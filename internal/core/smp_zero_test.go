package core

// Zero-page reclaim under multiprocessor pressure. The write-back
// path classifies an evicted page as all-zeros by scanning its frame,
// but a reference holding a cached PTW translation on another CPU is
// allowed to complete against the old frame until the shootdown
// broadcast returns — so a store can land after the scan. The evictor
// must re-validate the zero verdict once InvalidatePTW has returned
// and route such a page through the dirty write-back instead of
// freeing its record; otherwise the store is silently discarded (the
// page reverts to the quota-trapped state and rereads zero).
//
// Each worker owns its pages exclusively — no word of any page is
// written by two CPUs — so the quota-trap first-touch path, which has
// no descriptor-lock serialization, is only ever taken by one
// processor per page. Workers oscillate their pages between zero and
// non-zero, which keeps the zero-scan racing against their own cached
// translations while other CPUs' fault service does the evicting.
// Every read-after-write is verified exactly. Run with -race.

import (
	"fmt"
	"sync"
	"testing"

	"multics/internal/aim"
	"multics/internal/hw"
	"multics/internal/uproc"
)

func TestSMPZeroEvictionLosesNoWrite(t *testing.T) {
	const (
		nCPU   = 4
		rounds = 6
		pgs    = 8
	)
	k := boot(t, func(c *Config) {
		c.Processors = nCPU
		c.MemFrames = 24 // working sets dwarf the pageable frames
		c.WiredFrames = 8
		c.RootQuota = 4096
	})
	if k.AssocBus == nil {
		t.Fatal("associative memory should be on by default")
	}

	type worker struct {
		cpu *hw.Processor
		p   *uproc.Process
		seg int
	}
	var workers []*worker
	for i := 0; i < nCPU; i++ {
		p, err := k.CreateProcess(fmt.Sprintf("zero%d.x", i), aim.Bottom)
		if err != nil {
			t.Fatal(err)
		}
		cpu := k.CPUs[i]
		k.Attach(cpu, p)
		w := &worker{cpu: cpu, p: p}
		name := fmt.Sprintf("osc%d", i)
		if _, err := k.CreateFile(cpu, p, nil, name, nil, aim.Bottom); err != nil {
			t.Fatal(err)
		}
		seg, err := k.OpenPath(cpu, p, []string{name})
		if err != nil {
			t.Fatal(err)
		}
		w.seg = seg
		// Materialize every page serially, then zero it so round one
		// starts from the oscillating state.
		for pg := 0; pg < pgs; pg++ {
			if err := k.Write(cpu, p, seg, pg*hw.PageWords, 1); err != nil {
				t.Fatal(err)
			}
			if err := k.Write(cpu, p, seg, pg*hw.PageWords, 0); err != nil {
				t.Fatal(err)
			}
		}
		workers = append(workers, w)
	}

	var wg sync.WaitGroup
	errs := make(chan error, nCPU)
	for wi, w := range workers {
		wg.Add(1)
		go func(wi int, w *worker) {
			defer wg.Done()
			fail := func(err error) { errs <- fmt.Errorf("worker %d: %w", wi, err) }
			for r := 0; r < rounds; r++ {
				for pg := 0; pg < pgs; pg++ {
					v := hw.Word(1000*(wi+1) + 10*r + pg + 1)
					off := pg * hw.PageWords
					// The store may land through a cached PTW while
					// another CPU's fault service is zero-scanning
					// this page for eviction.
					if err := k.Write(w.cpu, w.p, w.seg, off, v); err != nil {
						fail(err)
						return
					}
					got, err := k.Read(w.cpu, w.p, w.seg, off)
					if err != nil {
						fail(err)
						return
					}
					if got != v {
						fail(fmt.Errorf("round %d page %d reads %d after writing %d (write lost to zero reclaim?)",
							r, pg, got, v))
						return
					}
					// Back to all-zero: the next eviction of this page
					// may legitimately take the zero-reclaim path.
					if err := k.Write(w.cpu, w.p, w.seg, off, 0); err != nil {
						fail(err)
						return
					}
				}
			}
		}(wi, w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := k.Frames.Stats()
	if st.Evictions == 0 {
		t.Error("storm produced no evictions; the test applied no pressure")
	}
	if st.ZeroEvictions == 0 {
		t.Error("storm reclaimed no zero pages; the racing path was not exercised")
	}
	if st.Shootdowns == 0 {
		t.Error("storm produced no shootdowns; the cross-CPU invalidation path was not exercised")
	}
	if st.WriteBackErrors != 0 {
		t.Errorf("storm recorded %d write-back errors with no fault injection", st.WriteBackErrors)
	}

	// The oscillation created and released storage charges constantly;
	// at quiesce the books must balance exactly.
	charged, allocated := accountingBalance(t, k)
	if charged != allocated {
		t.Errorf("after storm: %d pages charged vs %d records allocated", charged, allocated)
	}
	for wi, w := range workers {
		if err := k.Delete(w.cpu, w.p, nil, fmt.Sprintf("osc%d", wi)); err != nil {
			t.Fatal(err)
		}
	}
	charged, allocated = accountingBalance(t, k)
	if charged != allocated {
		t.Errorf("after teardown: %d pages charged vs %d records allocated", charged, allocated)
	}
	if bad := k.Frames.Audit(); len(bad) != 0 {
		t.Errorf("page frame audit: %v", bad)
	}
	if bad := k.Segs.Audit(); len(bad) != 0 {
		t.Errorf("segment audit: %v", bad)
	}
}
