// Package core assembles Kernel/Multics: it boots every object
// manager bottom-up, declares the complete dependency structure, and
// refuses to run if that structure is not the loop-free lattice of
// disciplined dependencies the type-extension rationale demands. The
// paper's central claim — that the kernel's correctness can be
// established iteratively, one module at a time — is thereby made
// executable: the certification order is computable at every boot.
//
// The package also provides the user-visible operations (the gates)
// and the fault loop that turns hardware exceptions into calls on the
// appropriate managers: missing segments and pages into the known
// segment manager's services, quota exceptions into the charged
// growth path, locked descriptors into waits, and relocation notices
// into upward signals dispatched after the faulting chain unwinds.
package core

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"

	"multics/internal/aim"
	"multics/internal/coreseg"
	"multics/internal/deps"
	"multics/internal/directory"
	"multics/internal/disk"
	"multics/internal/hw"
	"multics/internal/knownseg"
	"multics/internal/lockrank"
	"multics/internal/pageframe"
	"multics/internal/quota"
	"multics/internal/salvage"
	"multics/internal/segment"
	"multics/internal/trace"
	"multics/internal/uproc"
	"multics/internal/upsignal"
	"multics/internal/vproc"
)

// ReclaimerModule is the second dedicated memory-management process of
// the redesigned (multi-process) paging system.
const ReclaimerModule = "core-reclaimer"

// GateModule names the kernel's own gate lock in the lock-rank table.
// It is not a module of the Figure-4 lattice: it ranks one layer above
// the whole lattice, because the fault loop holds it while upward-
// signal handlers acquire module locks below.
const GateModule = "kernel-gate"

// A PackSpec describes one disk pack to mount at boot.
type PackSpec struct {
	ID      string
	Records int
}

// Config parameterizes Boot. The zero value is not usable; call
// DefaultConfig for a sensible small machine.
type Config struct {
	// MemFrames is total primary memory; WiredFrames of it belong
	// to core segments.
	MemFrames   int
	WiredFrames int
	// VProcs is the fixed number of virtual processors.
	VProcs int
	// Processors is the number of simulated CPUs.
	Processors int
	// Packs are created and mounted at boot; the first holds the
	// root. May be empty if Mount supplies the packs instead.
	Packs []PackSpec
	// Mount lists existing packs — demounted from a previous
	// incarnation, possibly after a crash — to mount at boot. Any
	// that are marked dirty are salvaged before the kernel uses
	// them. When Packs is empty the first mounted pack holds the
	// root.
	Mount []*disk.Pack
	// RootQuota is the root directory's quota cell limit, in pages.
	RootQuota int
	// Daemons selects the multi-process memory manager (the
	// redesign); false runs write-backs inline as 1974 did.
	Daemons bool
	// Seed fixes identifier fabrication for reproducibility.
	Seed uint64
	// TraceEvents, when positive, boots with event tracing on,
	// retaining that many events in the trace ring. Zero boots
	// untraced (every emission site then costs one nil check).
	TraceEvents int
	// ASTPages sizes the active segment table in core-segment pages
	// (128 entries per page); zero selects the default of 2. Every
	// resident process state holds an entry, so a login storm scales
	// this with its user count — and WiredFrames with it.
	ASTPages int
	// SpreadPacks places new files round-robin across the mounted
	// packs instead of on the containing directory's pack, so
	// independent files' faults ride different per-pack device
	// queues and overlap. Directories stay clustered with their
	// parents either way.
	SpreadPacks bool
	// AssocOff boots without per-processor associative memories:
	// every reference then pays a full table walk, as the kernel ran
	// before the cache. The default (false) fits each processor with
	// a cache and wires the shootdown bus through the page frame and
	// segment managers.
	AssocOff bool
}

// DefaultConfig returns a small but fully functional machine.
func DefaultConfig() Config {
	return Config{
		MemFrames:   96,
		WiredFrames: 8,
		VProcs:      8,
		Processors:  2,
		Packs:       []PackSpec{{ID: "dska", Records: 1024}, {ID: "dskb", Records: 1024}},
		RootQuota:   512,
		Daemons:     true,
		Seed:        1977,
	}
}

// A Kernel is a booted Kernel/Multics instance.
type Kernel struct {
	Meter    *hw.CostMeter
	Mem      *hw.Memory
	CoreSegs *coreseg.Manager
	VProcs   *vproc.Manager
	Vols     *disk.Volumes
	Frames   *pageframe.Manager
	Cells    *quota.Manager
	Segs     *segment.Manager
	KSM      *knownseg.Manager
	Dirs     *directory.Manager
	Procs    *uproc.Manager
	Signals  *upsignal.Dispatcher
	Queue    *uproc.Queue
	Graph    *deps.Graph
	CPUs     []*hw.Processor
	// AssocBus is the connect-fault plane carrying translation-cache
	// shootdowns between processors; nil when Config.AssocOff.
	AssocBus *hw.ShootdownBus
	// Trace is the kernel event recorder, nil until StartTrace.
	Trace *trace.Recorder
	// Salvage is the boot-time salvager's report: what the volume
	// salvager repaired on packs that were mounted dirty. Clean when
	// no pack needed repair.
	Salvage salvage.Report

	cfg Config
	// gateLock is the kernel's gate lock: the fault loop holds it
	// while dispatching upward signals, so relocation handlers —
	// which walk down from the directory manager — run one at a time
	// even with several processors faulting concurrently. Ranked one
	// layer above the whole lattice (GateModule), and priority-
	// donating: a high-priority process waiting here boosts the
	// holder so a low-priority holder cannot be starved mid-dispatch.
	gateLock *uproc.PLock
	// restores counts processes resumed after relocation notices.
	restores atomic.Int64
	// retryPressure counts references that crossed half their
	// fault-service retry budget; retryExhausted counts references
	// that ran the budget out entirely and failed. Together they make
	// retry starvation visible long before it becomes an error.
	retryPressure  atomic.Int64
	retryExhausted atomic.Int64
}

// RetryStats reports the fault-service retry pressure: how many
// references crossed half their retry budget (HalfBudget) and how
// many exhausted it and failed (Exhausted).
func (k *Kernel) RetryStats() (halfBudget, exhausted int64) {
	return k.retryPressure.Load(), k.retryExhausted.Load()
}

// Boot builds and verifies a Kernel/Multics instance.
func Boot(cfg Config) (*Kernel, error) {
	if cfg.MemFrames <= cfg.WiredFrames {
		return nil, fmt.Errorf("core: %d frames with %d wired leaves no pageable memory", cfg.MemFrames, cfg.WiredFrames)
	}
	if len(cfg.Packs) == 0 && len(cfg.Mount) == 0 {
		return nil, errors.New("core: no disk packs configured")
	}
	if cfg.Processors <= 0 {
		cfg.Processors = 1
	}
	k := &Kernel{Meter: &hw.CostMeter{}, cfg: cfg}
	k.Mem = hw.NewMemory(cfg.MemFrames)

	// The structure check: the kernel refuses to boot on a
	// dependency loop or an undisciplined dependency. Verified
	// before anything runs so that even the boot-time salvager
	// works under a certified structure.
	k.Graph = BuildGraph()
	if err := k.Graph.Verify(); err != nil {
		return nil, fmt.Errorf("core: kernel structure rejected: %w", err)
	}
	// The certification order doubles as the locking order: install
	// the layers as lock ranks, so that (in debug builds) acquiring a
	// module's lock while holding an equal-or-lower-ranked one panics.
	// The graph is static, so every boot installs identical ranks.
	layers, err := k.Graph.Layers()
	if err != nil {
		return nil, fmt.Errorf("core: kernel structure rejected: %w", err)
	}
	lockrank.SetLayers(layers)
	lockrank.SetModuleLayer(GateModule, len(layers))
	if cfg.TraceEvents > 0 {
		// The recorder exists before the disk level boots so that
		// salvage repairs are on the record.
		k.Trace = trace.NewRecorder(cfg.TraceEvents, k.Meter)
		k.Trace.Register(k.Graph.Modules()...)
	}

	// Level 0: core segments, fixed at initialization.
	cm, err := coreseg.NewManager(k.Mem, cfg.WiredFrames, k.Meter)
	if err != nil {
		return nil, err
	}
	k.CoreSegs = cm
	vpStates, err := cm.Allocate("vp-states", cfg.VProcs*vproc.StateWords)
	if err != nil {
		return nil, err
	}
	quotaTable, err := cm.Allocate("quota-table", hw.PageWords)
	if err != nil {
		return nil, err
	}
	astPages := cfg.ASTPages
	if astPages <= 0 {
		astPages = 2
	}
	ast, err := cm.Allocate("ast", astPages*hw.PageWords)
	if err != nil {
		return nil, err
	}
	msgSeg, err := cm.Allocate("msg-queue", hw.PageWords)
	if err != nil {
		return nil, err
	}

	// Level 1: the fixed virtual processors.
	k.VProcs, err = vproc.NewManager(cfg.VProcs, vpStates, k.Meter)
	if err != nil {
		return nil, err
	}
	for _, mod := range []string{pageframe.PageWriterModule, ReclaimerModule, uproc.SchedulerModule} {
		if _, err := k.VProcs.BindKernel(mod); err != nil {
			return nil, err
		}
	}

	// Disk and the memory managers.
	k.Vols = disk.NewVolumes(k.Meter)
	for _, p := range cfg.Packs {
		if _, err := k.Vols.AddPack(p.ID, p.Records); err != nil {
			return nil, err
		}
	}
	for _, p := range cfg.Mount {
		if err := k.Vols.Mount(p); err != nil {
			return nil, err
		}
	}
	// Any pack mounted dirty was in use when its previous system
	// stopped: salvage before higher levels see it.
	k.Salvage, err = salvage.Run(k.Vols, k.Trace, false)
	if err != nil {
		return nil, fmt.Errorf("core: boot-time salvage: %w", err)
	}
	k.Frames, err = pageframe.NewManager(k.Mem, cm.FirstPageableFrame(), k.VProcs, k.Meter)
	if err != nil {
		return nil, err
	}
	k.Frames.Daemons = cfg.Daemons
	if !cfg.AssocOff {
		k.AssocBus = hw.NewShootdownBus()
		k.Frames.Bus = k.AssocBus
		k.Frames.AssocStats = func() (hits, misses, shootdowns int64) {
			for _, cpu := range k.CPUs {
				st := cpu.Assoc.Stats()
				hits += st.Hits
				misses += st.Misses
			}
			return hits, misses, k.AssocBus.Shootdowns()
		}
	}
	k.Cells, err = quota.NewManager(k.Vols, quotaTable, k.Meter)
	if err != nil {
		return nil, err
	}
	k.Segs, err = segment.NewManager(k.Vols, k.Frames, k.Cells, ast, k.Meter)
	if err != nil {
		return nil, err
	}
	k.Segs.Bus = k.AssocBus

	// The naming and process levels.
	rootPack := ""
	if len(cfg.Packs) > 0 {
		rootPack = cfg.Packs[0].ID
	} else {
		rootPack = cfg.Mount[0].ID()
	}
	k.Signals = upsignal.NewDispatcher()
	k.KSM = knownseg.NewManager(k.Segs, k.Signals, k.Meter)
	k.Dirs, err = directory.NewManager(k.Segs, k.KSM, k.Cells, k.Signals, k.Meter, directory.Config{
		RootPack:  rootPack,
		RootQuota: cfg.RootQuota,
		Seed:      cfg.Seed,
		Spread:    cfg.SpreadPacks,
	})
	if err != nil {
		return nil, err
	}
	k.Dirs.Restore = func(state any) {
		k.restores.Add(1)
		if r, ok := state.(func()); ok && r != nil {
			r()
		}
	}
	k.Queue, err = uproc.NewQueue(msgSeg, k.Meter)
	if err != nil {
		return nil, err
	}
	k.Procs = uproc.NewManager(k.VProcs, k.Segs, k.KSM, k.Queue, k.Meter)
	// One run queue per simulated processor, so each CPU's scheduler
	// worker dispatches from its own queue and steals when it drains.
	k.Procs.SetRunQueues(cfg.Processors)
	// The gate lock donates priority through the process manager: a
	// waiter at the gate boosts whoever holds it.
	k.gateLock = uproc.NewPLock(k.Procs, GateModule)
	k.Procs.StatePack = rootPack
	rootEntry, err := k.Dirs.Status("initializer.sys", aim.Top, k.Dirs.RootID())
	if err != nil {
		return nil, err
	}
	k.Procs.StateCell = segment.CellRef{Cell: rootEntry.Addr, UID: rootEntry.UID, Has: true}

	// Processors, with the kernel design's two hardware additions.
	// Each processor carries its own wired descriptor table behind
	// its second descriptor base register: the tables translate
	// identically (they share the wired page tables), but a fault
	// being serviced through one processor's table never contends on
	// another's.
	for i := 0; i < cfg.Processors; i++ {
		sysDT, err := buildSystemDT(cm, k.Procs.KSTBase)
		if err != nil {
			return nil, err
		}
		cpu := hw.NewProcessor(i, k.Mem, k.Meter)
		cpu.DescriptorLockHW = true
		cpu.SystemDT = sysDT
		cpu.SystemSegMax = k.Procs.KSTBase
		cpu.Ring = hw.UserRing
		if k.AssocBus != nil {
			cpu.Assoc = hw.NewAssociativeMemory()
			cpu.AssocModule = ModFrame
			k.AssocBus.Attach(cpu.Assoc)
		}
		k.VProcs.RegisterProcessor(cpu)
		k.CPUs = append(k.CPUs, cpu)
	}

	cm.Seal()
	if k.Trace != nil {
		k.wireTrace(k.Trace)
	}
	return k, nil
}

// StartTrace turns on kernel-wide event tracing: it creates a
// recorder retaining capacity events (non-positive selects
// trace.DefaultCapacity) stamped by the kernel's cycle meter,
// registers every module of the dependency graph as a legal event
// source, and threads the sink through the hardware and every
// instrumented manager. The recorder is returned and kept as
// k.Trace.
func (k *Kernel) StartTrace(capacity int) *trace.Recorder {
	rec := trace.NewRecorder(capacity, k.Meter)
	rec.Register(k.Graph.Modules()...)
	k.wireTrace(rec)
	return rec
}

// wireTrace threads an existing recorder through the hardware and
// every instrumented manager and keeps it as k.Trace.
func (k *Kernel) wireTrace(rec *trace.Recorder) {
	// Each fault kind is charged to the module that services it.
	// Access, bounds and gate violations have no kernel service —
	// they are returned to the process that erred — so they are
	// charged to the user process manager, which owns that delivery.
	faultModules := map[hw.FaultKind]string{
		hw.FaultMissingSegment:   ModKnownSeg,
		hw.FaultMissingPage:      ModFrame,
		hw.FaultLockedDescriptor: ModFrame,
		hw.FaultQuota:            ModQuota,
		hw.FaultAccess:           ModUProc,
		hw.FaultBounds:           ModUProc,
		hw.FaultGate:             ModUProc,
	}
	for _, cpu := range k.CPUs {
		cpu.Trace = rec
		cpu.FaultModules = faultModules
	}
	k.AssocBus.SetTrace(rec)
	k.Vols.SetTrace(rec)
	k.VProcs.SetTrace(rec)
	k.Frames.SetTrace(rec)
	k.Cells.SetTrace(rec)
	k.Procs.SetTrace(rec)
	k.Signals.SetTrace(rec)
	k.Trace = rec
}

// AssocFingerprint renders every processor's associative-memory state
// in a fixed format. It is part of the determinism surface: two
// identical single-processor runs must yield byte-identical
// fingerprints, cache contents included.
func (k *Kernel) AssocFingerprint() string {
	var b strings.Builder
	for _, cpu := range k.CPUs {
		fmt.Fprintf(&b, "cpu%d %s", cpu.ID, cpu.Assoc.Fingerprint())
		b.WriteByte('\n')
	}
	return b.String()
}

// buildSystemDT wires one processor's system descriptor table over
// the core segments.
func buildSystemDT(cm *coreseg.Manager, kstBase int) (*hw.DescriptorTable, error) {
	sysDT := hw.NewDescriptorTable(kstBase)
	for i, name := range cm.Segments() {
		seg, err := cm.Segment(name)
		if err != nil {
			return nil, err
		}
		if i >= sysDT.Len() {
			break
		}
		if err := sysDT.Set(i, hw.SDW{Present: true, Table: seg.PageTable(), Access: hw.Read | hw.Write, MaxRing: hw.KernelRing, WriteRing: hw.KernelRing}); err != nil {
			return nil, err
		}
	}
	return sysDT, nil
}

// Restores reports how many relocation notices resumed a process.
func (k *Kernel) Restores() int64 { return k.restores.Load() }

// CertificationOrder returns the module layers in which an auditor
// can establish correctness bottom-up.
func (k *Kernel) CertificationOrder() [][]string {
	layers, err := k.Graph.Layers()
	if err != nil {
		// Boot verified loop-freedom; this cannot happen.
		panic(err)
	}
	return layers
}
