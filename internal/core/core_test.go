package core

import (
	"errors"
	"sync"
	"testing"

	"multics/internal/aim"
	"multics/internal/directory"
	"multics/internal/hw"
	"multics/internal/quota"
	"multics/internal/uproc"
)

func boot(t *testing.T, mutate func(*Config)) *Kernel {
	t.Helper()
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	k, err := Boot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// user builds a process attached to CPU 0.
func user(t *testing.T, k *Kernel, principal string, label aim.Label) (*hw.Processor, *uproc.Process) {
	t.Helper()
	p, err := k.CreateProcess(principal, label)
	if err != nil {
		t.Fatal(err)
	}
	cpu := k.CPUs[0]
	k.Attach(cpu, p)
	return cpu, p
}

func TestBootVerifiesStructure(t *testing.T) {
	k := boot(t, nil)
	if !k.Graph.LoopFree() {
		t.Fatal("booted kernel has dependency loops")
	}
	if len(k.Graph.Undisciplined()) != 0 {
		t.Fatalf("undisciplined edges: %v", k.Graph.Undisciplined())
	}
	layers := k.CertificationOrder()
	if len(layers) < 4 {
		t.Errorf("certification order has only %d layers: %v", len(layers), layers)
	}
	if layers[0][0] != ModCoreSeg {
		t.Errorf("bottom layer = %v, want the core segment manager", layers[0])
	}
	if !k.CoreSegs.Sealed() {
		t.Error("core segment allocation not sealed after boot")
	}
}

func TestBootValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemFrames = cfg.WiredFrames
	if _, err := Boot(cfg); err == nil {
		t.Error("boot with no pageable memory succeeded")
	}
	cfg = DefaultConfig()
	cfg.Packs = nil
	if _, err := Boot(cfg); err == nil {
		t.Error("boot with no packs succeeded")
	}
}

func TestEndToEndFileIO(t *testing.T) {
	k := boot(t, nil)
	cpu, p := user(t, k, "alice.sys", aim.Bottom)
	if _, err := k.CreateDir(cpu, p, nil, "home", directory.Public(hw.Read|hw.Write), aim.Bottom); err != nil {
		t.Fatal(err)
	}
	if _, err := k.CreateFile(cpu, p, []string{"home"}, "data", nil, aim.Bottom); err != nil {
		t.Fatal(err)
	}
	segno, err := k.OpenPath(cpu, p, []string{"home", "data"})
	if err != nil {
		t.Fatal(err)
	}
	// The write faults through: missing segment, then quota (grow),
	// then succeeds.
	if err := k.Write(cpu, p, segno, 5, 1234); err != nil {
		t.Fatal(err)
	}
	w, err := k.Read(cpu, p, segno, 5)
	if err != nil || w != 1234 {
		t.Fatalf("read back %d, %v", w, err)
	}
	// Sparse write several pages in: more quota faults.
	if err := k.Write(cpu, p, segno, 5*hw.PageWords+1, 9); err != nil {
		t.Fatal(err)
	}
	w, err = k.Read(cpu, p, segno, 5*hw.PageWords+1)
	if err != nil || w != 9 {
		t.Fatalf("sparse read back %d, %v", w, err)
	}
	// Untouched middle pages read as zero after the quota path runs
	// (each first touch is charged).
	w, err = k.Read(cpu, p, segno, 2*hw.PageWords)
	if err != nil || w != 0 {
		t.Fatalf("hole read = %d, %v", w, err)
	}
}

func TestTwoProcessesShareAFile(t *testing.T) {
	k := boot(t, nil)
	cpu, alice := user(t, k, "alice.sys", aim.Bottom)
	if _, err := k.CreateFile(cpu, alice, nil, "shared", directory.ACL{
		{Pattern: "alice.sys", Mode: hw.Read | hw.Write},
		{Pattern: "bob.dev", Mode: hw.Read},
	}, aim.Bottom); err != nil {
		t.Fatal(err)
	}
	sa, err := k.OpenPath(cpu, alice, []string{"shared"})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Write(cpu, alice, sa, 0, 77); err != nil {
		t.Fatal(err)
	}
	bob, err := k.CreateProcess("bob.dev", aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	cpu2 := k.CPUs[1]
	k.Attach(cpu2, bob)
	sb, err := k.OpenPath(cpu2, bob, []string{"shared"})
	if err != nil {
		t.Fatal(err)
	}
	w, err := k.Read(cpu2, bob, sb, 0)
	if err != nil || w != 77 {
		t.Fatalf("bob read = %d, %v", w, err)
	}
	// Bob's grant is read-only: the store traps as an access
	// violation, not a serviceable fault.
	err = k.Write(cpu2, bob, sb, 0, 1)
	if !hw.IsFault(err, hw.FaultAccess) {
		t.Errorf("bob write = %v, want access fault", err)
	}
}

func TestQuotaExhaustionSurfacesToUser(t *testing.T) {
	k := boot(t, nil)
	cpu, p := user(t, k, "alice.sys", aim.Bottom)
	dirID, err := k.CreateDir(cpu, p, nil, "small", directory.Public(hw.Read|hw.Write), aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.DesignateQuota(cpu, p, dirID, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := k.CreateFile(cpu, p, []string{"small"}, "f", nil, aim.Bottom); err != nil {
		t.Fatal(err)
	}
	segno, err := k.OpenPath(cpu, p, []string{"small", "f"})
	if err != nil {
		t.Fatal(err)
	}
	// The cell covers the directory's own storage too: creating the
	// file consumed one page of the directory segment, leaving room
	// for two file pages.
	if err := k.Write(cpu, p, segno, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := k.Write(cpu, p, segno, hw.PageWords, 1); err != nil {
		t.Fatal(err)
	}
	err = k.Write(cpu, p, segno, 2*hw.PageWords, 1)
	if !errors.Is(err, quota.ErrExceeded) {
		t.Fatalf("write beyond quota = %v, want quota exceeded", err)
	}
}

func TestFullPackRelocationEndToEnd(t *testing.T) {
	k := boot(t, func(c *Config) {
		c.Packs = []PackSpec{{ID: "dska", Records: 8}, {ID: "dskb", Records: 64}}
		c.RootQuota = 64
	})
	cpu, p := user(t, k, "alice.sys", aim.Bottom)
	if _, err := k.CreateFile(cpu, p, nil, "big", nil, aim.Bottom); err != nil {
		t.Fatal(err)
	}
	segno, err := k.OpenPath(cpu, p, []string{"big"})
	if err != nil {
		t.Fatal(err)
	}
	// Fill pages until dska overflows; the fault loop must carry
	// the process through the relocation transparently.
	for i := 0; i < 12; i++ {
		if err := k.Write(cpu, p, segno, i*hw.PageWords, hw.Word(100+i)); err != nil {
			t.Fatalf("write page %d: %v", i, err)
		}
	}
	if k.Restores() == 0 {
		t.Error("no relocation restore recorded; the full-pack path never ran")
	}
	// All data survived the move.
	for i := 0; i < 12; i++ {
		w, err := k.Read(cpu, p, segno, i*hw.PageWords)
		if err != nil || w != hw.Word(100+i) {
			t.Fatalf("page %d read = %d, %v", i, w, err)
		}
	}
	// The directory entry now names dskb.
	id, err := k.WalkPath(cpu, p, []string{"big"})
	if err != nil {
		t.Fatal(err)
	}
	st, err := k.Dirs.Status("alice.sys", aim.Bottom, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Addr.Pack != "dskb" {
		t.Errorf("entry pack = %s, want dskb", st.Addr.Pack)
	}
}

func TestMemoryPressureThrashesButWorks(t *testing.T) {
	// More working set than pageable frames: every touch evicts.
	k := boot(t, func(c *Config) {
		c.MemFrames = 12
		c.WiredFrames = 8
	})
	cpu, p := user(t, k, "alice.sys", aim.Bottom)
	if _, err := k.CreateFile(cpu, p, nil, "f", nil, aim.Bottom); err != nil {
		t.Fatal(err)
	}
	segno, err := k.OpenPath(cpu, p, []string{"f"})
	if err != nil {
		t.Fatal(err)
	}
	const pages = 10
	for i := 0; i < pages; i++ {
		if err := k.Write(cpu, p, segno, i*hw.PageWords+i, hw.Word(i+1)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i := 0; i < pages; i++ {
		w, err := k.Read(cpu, p, segno, i*hw.PageWords+i)
		if err != nil || w != hw.Word(i+1) {
			t.Fatalf("read %d = %d, %v", i, w, err)
		}
	}
	if evictions := k.Frames.Stats().Evictions; evictions == 0 {
		t.Error("no evictions under memory pressure")
	}
}

func TestZeroPageConfinementViolation(t *testing.T) {
	// The paper's confinement example (C1): reading a page of all
	// zeros allocates storage and updates the accounting — a READ
	// causes information to be WRITTEN. A low-labelled observer of
	// the quota count can see a high-labelled reader's activity: a
	// covert channel inherent in the zero-page semantics.
	k := boot(t, func(c *Config) {
		c.MemFrames = 12 // small memory so zero pages get evicted
		c.WiredFrames = 8
	})
	cpu, p := user(t, k, "alice.sys", aim.Bottom)
	if _, err := k.CreateFile(cpu, p, nil, "f", directory.Public(hw.Read|hw.Write), aim.Bottom); err != nil {
		t.Fatal(err)
	}
	segno, err := k.OpenPath(cpu, p, []string{"f"})
	if err != nil {
		t.Fatal(err)
	}
	// Touch page 0 and never write it; then flood memory so it is
	// evicted as a zero page, releasing its charge.
	if _, err := k.Read(cpu, p, segno, 0); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 6; i++ {
		if err := k.Write(cpu, p, segno, i*hw.PageWords, 1); err != nil {
			t.Fatal(err)
		}
	}
	rootEntry, err := k.Dirs.Status("alice.sys", aim.Bottom, k.Dirs.RootID())
	if err != nil {
		t.Fatal(err)
	}
	_, before, err := k.Cells.Info(rootEntry.Addr)
	if err != nil {
		t.Fatal(err)
	}
	// A pure READ of the zero page forces allocation and accounting.
	if _, err := k.Read(cpu, p, segno, 0); err != nil {
		t.Fatal(err)
	}
	_, after, err := k.Cells.Info(rootEntry.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if after <= before {
		t.Fatalf("read of zero page did not change the quota count (%d -> %d); the confinement violation the paper describes should be observable", before, after)
	}
}

func TestConcurrentFaultsOnOnePage(t *testing.T) {
	// C4: two CPUs, one missing page. The descriptor-lock hardware
	// lets exactly one service the fault; the other waits and then
	// proceeds. No interpretive retranslation exists anywhere.
	k := boot(t, nil)
	cpu0, p := user(t, k, "alice.sys", aim.Bottom)
	cpu1 := k.CPUs[1]
	k.Attach(cpu1, p)
	if _, err := k.CreateFile(cpu0, p, nil, "f", nil, aim.Bottom); err != nil {
		t.Fatal(err)
	}
	segno, err := k.OpenPath(cpu0, p, []string{"f"})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Write(cpu0, p, segno, 0, 42); err != nil {
		t.Fatal(err)
	}
	// Evict the page by deactivating the segment, then reconnect.
	e, err := p.KST().Entry(segno)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Segs.Deactivate(e.UID); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	vals := make([]hw.Word, 2)
	errs := make([]error, 2)
	for i, cpu := range []*hw.Processor{cpu0, cpu1} {
		wg.Add(1)
		go func(i int, cpu *hw.Processor) {
			defer wg.Done()
			vals[i], errs[i] = k.Read(cpu, p, segno, 0)
		}(i, cpu)
	}
	wg.Wait()
	for i := range vals {
		if errs[i] != nil || vals[i] != 42 {
			t.Errorf("cpu %d read = %d, %v", i, vals[i], errs[i])
		}
	}
}

func TestUserRingWalkVsKernelResolve(t *testing.T) {
	// P2's shape: the user-ring walk on the Search primitive is
	// somewhat FASTER than the buried in-kernel resolver, despite
	// the extra gate crossings.
	k := boot(t, nil)
	cpu, p := user(t, k, "alice.sys", aim.Bottom)
	if _, err := k.CreateDir(cpu, p, nil, "a", directory.Public(hw.Read|hw.Write), aim.Bottom); err != nil {
		t.Fatal(err)
	}
	if _, err := k.CreateDir(cpu, p, []string{"a"}, "b", directory.Public(hw.Read|hw.Write), aim.Bottom); err != nil {
		t.Fatal(err)
	}
	if _, err := k.CreateFile(cpu, p, []string{"a", "b"}, "f", nil, aim.Bottom); err != nil {
		t.Fatal(err)
	}
	path := []string{"a", "b", "f"}
	k.Meter.Reset()
	idWalk, err := k.WalkPath(cpu, p, path)
	if err != nil {
		t.Fatal(err)
	}
	walkCost := k.Meter.Cycles()
	k.Meter.Reset()
	idKernel, err := k.ResolveKernel(cpu, p, path)
	if err != nil {
		t.Fatal(err)
	}
	kernelCost := k.Meter.Cycles()
	if idWalk != idKernel {
		t.Fatalf("resolvers disagree: %v vs %v", idWalk, idKernel)
	}
	if walkCost >= kernelCost {
		t.Errorf("user-ring walk cost %d >= in-kernel resolve %d; the paper reports the moved name manager ran somewhat faster", walkCost, kernelCost)
	}
	if walkCost < kernelCost/2 {
		t.Errorf("user-ring walk %d is implausibly cheaper than in-kernel %d; 'somewhat faster', not dramatically", walkCost, kernelCost)
	}
}

func TestAccessDeniedPathsAreUniform(t *testing.T) {
	k := boot(t, nil)
	cpu, alice := user(t, k, "alice.sys", aim.Bottom)
	if _, err := k.CreateDir(cpu, alice, nil, "hidden", directory.ACL{{Pattern: "alice.sys", Mode: hw.Read | hw.Write}}, aim.Bottom); err != nil {
		t.Fatal(err)
	}
	if _, err := k.CreateFile(cpu, alice, []string{"hidden"}, "secret", directory.Owner("alice.sys"), aim.Bottom); err != nil {
		t.Fatal(err)
	}
	eve, err := k.CreateProcess("eve.out", aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	cpu1 := k.CPUs[1]
	k.Attach(cpu1, eve)
	// Probing an existing and a nonexistent secret through the
	// walk+open path yields identical answers.
	_, errExisting := k.OpenPath(cpu1, eve, []string{"hidden", "secret"})
	_, errMissing := k.OpenPath(cpu1, eve, []string{"hidden", "nothing"})
	if !errors.Is(errExisting, directory.ErrNoAccess) || !errors.Is(errMissing, directory.ErrNoAccess) {
		t.Fatalf("errors: existing=%v missing=%v", errExisting, errMissing)
	}
	if errExisting.Error() != errMissing.Error() {
		t.Errorf("probe responses differ: %q vs %q", errExisting, errMissing)
	}
}

func TestProcessLifecycleWithScheduler(t *testing.T) {
	k := boot(t, nil)
	var procs []*uproc.Process
	for i := 0; i < 6; i++ {
		p, err := k.CreateProcess("u.x", aim.Bottom)
		if err != nil {
			t.Fatal(err)
		}
		procs = append(procs, p)
	}
	n, err := k.Procs.RunQuantum(12, func(p *uproc.Process) { p.AddCPU(1) })
	if err != nil || n != 12 {
		t.Fatalf("RunQuantum = %d, %v", n, err)
	}
	for _, p := range procs {
		if p.CPU() != 2 {
			t.Errorf("process %d got %d quanta", p.ID(), p.CPU())
		}
		if err := k.Procs.Destroy(p); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSetACLGate(t *testing.T) {
	k := boot(t, nil)
	cpu, alice := user(t, k, "alice.sys", aim.Bottom)
	fileID, err := k.CreateFile(cpu, alice, nil, "f", directory.Owner("alice.sys"), aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := k.CreateProcess("bob.dev", aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	cpu2 := k.CPUs[1]
	k.Attach(cpu2, bob)
	if _, err := k.OpenPath(cpu2, bob, []string{"f"}); !errors.Is(err, directory.ErrNoAccess) {
		t.Fatalf("bob before grant: %v", err)
	}
	// The canonical transaction: one ACL change, nothing else.
	if err := k.SetACL(cpu, alice, fileID, directory.ACL{
		{Pattern: "alice.sys", Mode: hw.Read | hw.Write},
		{Pattern: "bob.dev", Mode: hw.Read},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := k.OpenPath(cpu2, bob, []string{"f"}); err != nil {
		t.Errorf("bob after grant: %v", err)
	}
	// Bob cannot change the ACL (no modify on the root for him? he
	// can: root is public rw — the right check is on the containing
	// directory, so bob CAN change it on a public root; verify the
	// restrictive case inside alice's private dir instead).
	privDir, err := k.CreateDir(cpu, alice, nil, "priv", directory.Owner("alice.sys"), aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	_ = privDir
	privFile, err := k.CreateFile(cpu, alice, []string{"priv"}, "g", directory.Public(hw.Read), aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetACL(cpu2, bob, privFile, directory.Public(hw.Read|hw.Write)); !errors.Is(err, directory.ErrNoAccess) {
		t.Errorf("bob rewrote an ACL in alice's directory: %v", err)
	}
}

func TestRenameAndTruncateGates(t *testing.T) {
	k := boot(t, nil)
	cpu, p := user(t, k, "alice.sys", aim.Bottom)
	if _, err := k.CreateFile(cpu, p, nil, "old", nil, aim.Bottom); err != nil {
		t.Fatal(err)
	}
	segno, err := k.OpenPath(cpu, p, []string{"old"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := k.Write(cpu, p, segno, i*hw.PageWords, hw.Word(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Rename(cpu, p, nil, "old", "new"); err != nil {
		t.Fatal(err)
	}
	if _, err := k.OpenPath(cpu, p, []string{"old"}); err == nil {
		t.Error("old name still opens")
	}
	// The existing segment number still works (identifier/uid
	// unchanged by rename).
	if w, err := k.Read(cpu, p, segno, 0); err != nil || w != 1 {
		t.Errorf("read via old segno after rename = %d, %v", w, err)
	}
	rootEntry, err := k.Dirs.Status("alice.sys", aim.Bottom, k.Dirs.RootID())
	if err != nil {
		t.Fatal(err)
	}
	_, before, _ := k.Cells.Info(rootEntry.Addr)
	if err := k.Truncate(cpu, p, segno, 1); err != nil {
		t.Fatal(err)
	}
	_, after, _ := k.Cells.Info(rootEntry.Addr)
	if after != before-2 {
		t.Errorf("truncate released %d pages, want 2", before-after)
	}
	if w, err := k.Read(cpu, p, segno, 0); err != nil || w != 1 {
		t.Errorf("surviving page after truncate = %d, %v", w, err)
	}
	// The truncated region reads back as zero (regrown on touch).
	if w, err := k.Read(cpu, p, segno, hw.PageWords); err != nil || w != 0 {
		t.Errorf("truncated page = %d, %v", w, err)
	}
	// A read-only grant cannot truncate.
	bob, err := k.CreateProcess("bob.dev", aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	cpu2 := k.CPUs[1]
	k.Attach(cpu2, bob)
	if err := k.SetACL(cpu, p, mustID(t, k, cpu, p, "new"), directory.ACL{
		{Pattern: "alice.sys", Mode: hw.Read | hw.Write},
		{Pattern: "bob.dev", Mode: hw.Read},
	}); err != nil {
		t.Fatal(err)
	}
	bsegno, err := k.OpenPath(cpu2, bob, []string{"new"})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Truncate(cpu2, bob, bsegno, 0); !errors.Is(err, directory.ErrNoAccess) {
		t.Errorf("read-only truncate = %v", err)
	}
}

func mustID(t *testing.T, k *Kernel, cpu *hw.Processor, p *uproc.Process, name string) directory.Identifier {
	t.Helper()
	id, err := k.WalkPath(cpu, p, []string{name})
	if err != nil {
		t.Fatal(err)
	}
	return id
}
