package core

// Multiprocessor gate stress: four simulated CPUs issue interleaved
// gate calls — create, grow (quota-charged writes), read back,
// truncate, delete — against the shared directory hierarchy, quota
// cells, frame pool and packs. The storage-accounting invariant must
// balance exactly afterwards and every manager audit must be clean.
// Run with -race to exercise the ranked locking.
//
// The file also checks the lock-rank table against the certification
// order, and that the parallel scheduler really runs distinct
// processes on distinct processors at the same time.

import (
	"fmt"
	"sync"
	"testing"

	"multics/internal/aim"
	"multics/internal/hw"
	"multics/internal/lockrank"
	"multics/internal/trace"
	"multics/internal/uproc"
)

func TestSMPGateStress(t *testing.T) {
	const (
		nCPU   = 4
		rounds = 6
		pages  = 6
	)
	k := boot(t, func(c *Config) {
		c.Processors = nCPU
		c.MemFrames = 40 // pressure: four working sets contend
		c.WiredFrames = 8
		c.RootQuota = 4096
	})
	type worker struct {
		cpu *hw.Processor
		p   *uproc.Process
	}
	var workers []*worker
	for i := 0; i < nCPU; i++ {
		p, err := k.CreateProcess(fmt.Sprintf("gate%d.x", i), aim.Bottom)
		if err != nil {
			t.Fatal(err)
		}
		cpu := k.CPUs[i]
		k.Attach(cpu, p)
		workers = append(workers, &worker{cpu: cpu, p: p})
	}

	// Warm-up: one create/write/delete materializes the root
	// directory's entry page, so the baseline below is the kernel's
	// steady state — the storm must return to it exactly.
	w0 := workers[0]
	if _, err := k.CreateFile(w0.cpu, w0.p, nil, "warmup", nil, aim.Bottom); err != nil {
		t.Fatal(err)
	}
	segno, err := k.OpenPath(w0.cpu, w0.p, []string{"warmup"})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Write(w0.cpu, w0.p, segno, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := k.Delete(w0.cpu, w0.p, nil, "warmup"); err != nil {
		t.Fatal(err)
	}
	chargedBefore, allocatedBefore := accountingBalance(t, k)
	if chargedBefore != allocatedBefore {
		t.Fatalf("unbalanced before storm: %d charged vs %d allocated", chargedBefore, allocatedBefore)
	}

	var wg sync.WaitGroup
	errs := make(chan error, nCPU)
	for wi, w := range workers {
		wg.Add(1)
		go func(wi int, w *worker) {
			defer wg.Done()
			fail := func(err error) { errs <- fmt.Errorf("worker %d: %w", wi, err) }
			for r := 0; r < rounds; r++ {
				name := fmt.Sprintf("w%d-r%d", wi, r)
				if _, err := k.CreateFile(w.cpu, w.p, nil, name, nil, aim.Bottom); err != nil {
					fail(err)
					return
				}
				segno, err := k.OpenPath(w.cpu, w.p, []string{name})
				if err != nil {
					fail(err)
					return
				}
				base := hw.Word(1000*(wi+1) + r)
				for pg := 0; pg < pages; pg++ {
					if err := k.Write(w.cpu, w.p, segno, pg*hw.PageWords+wi, base+hw.Word(pg)); err != nil {
						fail(err)
						return
					}
				}
				for pg := 0; pg < pages; pg++ {
					got, err := k.Read(w.cpu, w.p, segno, pg*hw.PageWords+wi)
					if err != nil {
						fail(err)
						return
					}
					if got != base+hw.Word(pg) {
						fail(fmt.Errorf("round %d page %d = %d, want %d", r, pg, got, base+hw.Word(pg)))
						return
					}
				}
				if err := k.Truncate(w.cpu, w.p, segno, 1); err != nil {
					fail(err)
					return
				}
				if err := k.Delete(w.cpu, w.p, nil, name); err != nil {
					fail(err)
					return
				}
			}
		}(wi, w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Everything created was deleted: the books must balance and
	// return to the pre-storm figures exactly.
	charged, allocated := accountingBalance(t, k)
	if charged != allocated {
		t.Errorf("after storm: %d pages charged vs %d records allocated", charged, allocated)
	}
	if charged != chargedBefore || allocated != allocatedBefore {
		t.Errorf("after storm: charged/allocated %d/%d, want the pre-storm %d/%d",
			charged, allocated, chargedBefore, allocatedBefore)
	}
	if bad := k.Frames.Audit(); len(bad) != 0 {
		t.Errorf("page frame audit: %v", bad)
	}
	if bad := k.Segs.Audit(); len(bad) != 0 {
		t.Errorf("segment audit: %v", bad)
	}
	if bad := k.KSM.Audit(); len(bad) != 0 {
		t.Errorf("KST audit: %v", bad)
	}
	if bad := k.VProcs.Audit(); len(bad) != 0 {
		t.Errorf("virtual processor audit: %v", bad)
	}
}

// TestLockRanksFollowCertificationOrder checks that every ranked lock
// declared by a manager carries exactly the rank its module's
// certification layer assigns, and that the kernel's own gate lock
// ranks one layer above the whole lattice.
func TestLockRanksFollowCertificationOrder(t *testing.T) {
	k := boot(t, nil)
	layers := k.CertificationOrder()
	layerOf := make(map[string]int)
	for i, layer := range layers {
		for _, mod := range layer {
			layerOf[mod] = i
		}
	}
	table := lockrank.Table()
	seen := make(map[string]bool)
	for _, e := range table {
		seen[e.Module] = true
		if e.Module == GateModule {
			if e.Layer != len(layers) {
				t.Errorf("kernel gate lock at layer %d, want %d (above the lattice)", e.Layer, len(layers))
			}
			continue
		}
		want, inLattice := layerOf[e.Module]
		if !inLattice {
			if e.Rank != lockrank.Unranked {
				t.Errorf("lock %s ranked %d but its module is not in the lattice", e.Name(), e.Rank)
			}
			continue
		}
		if e.Layer != want {
			t.Errorf("lock %s at layer %d, certification order says %d", e.Name(), e.Layer, want)
		}
		if e.Rank != lockrank.Rank(want*lockrank.MaxSubs+e.Sub) {
			t.Errorf("lock %s rank %d, want %d", e.Name(), e.Rank, want*lockrank.MaxSubs+e.Sub)
		}
	}
	// Every migrated manager must actually have a ranked lock.
	for _, mod := range []string{ModCoreSeg, ModVProc, ModFrame, ModQuota, ModSegment, ModKnownSeg, ModDir, ModUProc, GateModule} {
		if !seen[mod] {
			t.Errorf("module %s declares no ranked lock", mod)
		}
	}
}

// TestRunQuantumParallel proves the scheduler dispatches distinct
// processes to distinct processors concurrently: every processor's
// goroutine must be inside the quantum body at the same instant for
// the barrier to release, and the swap events must carry both
// processors' identities.
func TestRunQuantumParallel(t *testing.T) {
	const nCPU = 2
	k := boot(t, func(c *Config) { c.Processors = nCPU })
	rec := k.StartTrace(4096)
	for i := 0; i < nCPU; i++ {
		if _, err := k.CreateProcess(fmt.Sprintf("par%d.x", i), aim.Bottom); err != nil {
			t.Fatal(err)
		}
	}
	var barrier sync.WaitGroup
	barrier.Add(nCPU)
	ran, err := k.Procs.RunQuantumParallel(k.CPUs, 1, func(cpu *hw.Processor, p *uproc.Process) {
		k.Attach(cpu, p)
		barrier.Done()
		barrier.Wait() // releases only when every processor is in its body
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran != nCPU {
		t.Fatalf("ran %d processes, want %d", ran, nCPU)
	}
	cpus := make(map[int32]bool)
	for _, e := range rec.Events() {
		if e.Kind == trace.EvProcessSwap && e.CPU > 0 {
			cpus[e.CPU-1] = true
		}
	}
	for i := int32(0); i < nCPU; i++ {
		if !cpus[i] {
			t.Errorf("no process-swap event attributed to processor %d; got %v", i, cpus)
		}
	}
	if bad := k.Procs.Audit(); len(bad) != 0 {
		t.Errorf("process audit: %v", bad)
	}
}
