package core

import (
	"errors"
	"fmt"

	"multics/internal/aim"
	"multics/internal/directory"
	"multics/internal/hw"
	"multics/internal/knownseg"
	"multics/internal/trace"
	"multics/internal/uproc"
)

// bodyUserWalk is the per-component cost of the user-ring pathname
// expansion program — the code Bratt's design moved out of the
// kernel, a quarter the size of its in-kernel ancestor.
const bodyUserWalk = 30

// ErrFaultLoop is returned when a reference keeps faulting without
// making progress.
var ErrFaultLoop = errors.New("core: reference faulted without progress")

// ErrRetryBudget marks a reference that ran its whole fault-service
// retry budget out. It wraps ErrFaultLoop, so existing callers that
// match the generic fault loop keep working, while callers that care
// can distinguish budget exhaustion — the starvation case the
// retry-pressure counters track — from other no-progress loops.
var ErrRetryBudget = fmt.Errorf("%w (retry budget exhausted)", ErrFaultLoop)

// Attach binds a user process's address space to a CPU. This is the
// process-switch point: installing a different descriptor table clears
// the processor's associative memory of user entries, so nothing of
// the previous process's address space can be served to the new one.
func (k *Kernel) Attach(cpu *hw.Processor, p *uproc.Process) {
	cpu.SwitchUserDT(p.DT())
	cpu.Ring = hw.UserRing
	if k.Trace != nil {
		// Span self-time on this processor is attributed to p from
		// here on.
		k.Trace.SetRunningProcess(p.ID())
	}
}

// CreateProcess makes a user process for an authenticated principal.
func (k *Kernel) CreateProcess(principal string, label aim.Label) (*uproc.Process, error) {
	return k.Procs.Create(principal, label)
}

// gate runs fn in ring zero via a gate crossing on cpu (cpu may be
// nil for kernel-internal callers). module names the manager the
// crossing is attributed to in the kernel trace.
func (k *Kernel) gate(cpu *hw.Processor, module string, fn func() error) error {
	if cpu == nil {
		return fn()
	}
	cpu.GateModule = module
	return cpu.GateCall(hw.KernelRing, true, fn)
}

// Search is the gate to the protected single-directory search
// primitive.
func (k *Kernel) Search(cpu *hw.Processor, p *uproc.Process, dirID directory.Identifier, name string) (directory.Identifier, error) {
	var id directory.Identifier
	err := k.gate(cpu, ModDir, func() error {
		var err error
		id, err = k.Dirs.Search(directory.Principal(p.Principal()), p.Label(), dirID, name)
		return err
	})
	return id, err
}

// WalkPath is the user-ring pathname expansion built on the Search
// gate: one gate crossing per component plus the (small) user-ring
// expansion program. This is the post-Bratt design.
func (k *Kernel) WalkPath(cpu *hw.Processor, p *uproc.Process, path []string) (directory.Identifier, error) {
	id := k.Dirs.RootID()
	for _, name := range path {
		k.Meter.AddBody(bodyUserWalk, hw.PLI)
		next, err := k.Search(cpu, p, id, name)
		if err != nil {
			return 0, err
		}
		id = next
	}
	return id, nil
}

// ResolveKernel is the pre-redesign path resolution: the whole
// expansion buried in the supervisor behind a single gate, answering
// only "found" or "no access".
func (k *Kernel) ResolveKernel(cpu *hw.Processor, p *uproc.Process, path []string) (directory.Identifier, error) {
	var id directory.Identifier
	err := k.gate(cpu, ModDir, func() error {
		var err error
		id, err = k.Dirs.ResolvePathKernel(directory.Principal(p.Principal()), p.Label(), path)
		return err
	})
	return id, err
}

// Open initiates the object named by id into the process's address
// space and returns its segment number. The first reference will take
// a missing-segment fault and connect through the standard machinery.
func (k *Kernel) Open(cpu *hw.Processor, p *uproc.Process, id directory.Identifier) (int, error) {
	var segno int
	err := k.gate(cpu, ModDir, func() error {
		grant, err := k.Dirs.Initiate(directory.Principal(p.Principal()), p.Label(), id)
		if err != nil {
			return err
		}
		segno, err = k.KSM.MakeKnown(p.KST(), knownseg.Entry{
			UID: grant.UID, Addr: grant.Addr,
			Cell: grant.Cell, HasCell: grant.HasCell,
			Access: grant.Access, MaxRing: hw.UserRing, WriteRing: hw.UserRing,
		})
		return err
	})
	return segno, err
}

// OpenPath walks a path in the user ring and opens the result.
func (k *Kernel) OpenPath(cpu *hw.Processor, p *uproc.Process, path []string) (int, error) {
	id, err := k.WalkPath(cpu, p, path)
	if err != nil {
		return 0, err
	}
	return k.Open(cpu, p, id)
}

// CreateFile creates a file entry under the directory named by path.
func (k *Kernel) CreateFile(cpu *hw.Processor, p *uproc.Process, dirPath []string, name string, acl directory.ACL, label aim.Label) (directory.Identifier, error) {
	dirID, err := k.WalkPath(cpu, p, dirPath)
	if err != nil {
		return 0, err
	}
	var id directory.Identifier
	err = k.gate(cpu, ModDir, func() error {
		var err error
		id, err = k.Dirs.Create(directory.Principal(p.Principal()), p.Label(), dirID, name, false, acl, label)
		return err
	})
	return id, err
}

// CreateDir creates a directory entry under the directory named by
// path.
func (k *Kernel) CreateDir(cpu *hw.Processor, p *uproc.Process, dirPath []string, name string, acl directory.ACL, label aim.Label) (directory.Identifier, error) {
	dirID, err := k.WalkPath(cpu, p, dirPath)
	if err != nil {
		return 0, err
	}
	var id directory.Identifier
	err = k.gate(cpu, ModDir, func() error {
		var err error
		id, err = k.Dirs.Create(directory.Principal(p.Principal()), p.Label(), dirID, name, true, acl, label)
		return err
	})
	return id, err
}

// SetACL replaces the ACL of the object named by id.
func (k *Kernel) SetACL(cpu *hw.Processor, p *uproc.Process, id directory.Identifier, acl directory.ACL) error {
	return k.gate(cpu, ModDir, func() error {
		return k.Dirs.SetACL(directory.Principal(p.Principal()), p.Label(), id, acl)
	})
}

// Rename changes an entry's name within the directory named by
// dirPath.
func (k *Kernel) Rename(cpu *hw.Processor, p *uproc.Process, dirPath []string, oldName, newName string) error {
	dirID, err := k.WalkPath(cpu, p, dirPath)
	if err != nil {
		return err
	}
	return k.gate(cpu, ModDir, func() error {
		return k.Dirs.Rename(directory.Principal(p.Principal()), p.Label(), dirID, oldName, newName)
	})
}

// Delete removes the named entry from the directory named by dirPath,
// destroying its segment and returning its records and quota. The
// caller must not reference the segment afterwards: any stale binding
// faults and the missing-segment service reports the object gone.
func (k *Kernel) Delete(cpu *hw.Processor, p *uproc.Process, dirPath []string, name string) error {
	dirID, err := k.WalkPath(cpu, p, dirPath)
	if err != nil {
		return err
	}
	return k.gate(cpu, ModDir, func() error {
		return k.Dirs.Delete(directory.Principal(p.Principal()), p.Label(), dirID, name)
	})
}

// Truncate discards the pages of an opened segment at or beyond
// newPages, releasing their storage and quota. The caller needs write
// access to the segment.
func (k *Kernel) Truncate(cpu *hw.Processor, p *uproc.Process, segno, newPages int) error {
	return k.gate(cpu, ModSegment, func() error {
		e, err := p.KST().Entry(segno)
		if err != nil {
			return err
		}
		if !e.Access.Has(hw.Write) {
			return directory.ErrNoAccess
		}
		if _, err := k.Segs.Lookup(e.UID); err != nil {
			// Not active: activate through the standard machinery
			// so truncation can proceed.
			if _, err := k.Segs.Activate(e.UID, e.Addr, e.Cell, e.HasCell); err != nil {
				return err
			}
		}
		return k.Segs.Truncate(e.UID, newPages)
	})
}

// DesignateQuota makes the (childless) directory named by id a quota
// directory.
func (k *Kernel) DesignateQuota(cpu *hw.Processor, p *uproc.Process, id directory.Identifier, limit int) error {
	return k.gate(cpu, ModDir, func() error {
		return k.Dirs.DesignateQuota(directory.Principal(p.Principal()), p.Label(), id, limit)
	})
}

// Read performs a user-mode load with full fault handling.
func (k *Kernel) Read(cpu *hw.Processor, p *uproc.Process, segno, off int) (hw.Word, error) {
	return k.access(cpu, p, segno, off, false, 0)
}

// Write performs a user-mode store with full fault handling.
func (k *Kernel) Write(cpu *hw.Processor, p *uproc.Process, segno, off int, w hw.Word) error {
	_, err := k.access(cpu, p, segno, off, true, w)
	return err
}

// access is the reference-retry loop: issue the reference, let the
// hardware fault, handle the fault in ring zero, dispatch any upward
// signals after the handling chain unwinds, and rereference.
func (k *Kernel) access(cpu *hw.Processor, p *uproc.Process, segno, off int, write bool, w hw.Word) (hw.Word, error) {
	// The cap exists to turn a service that genuinely cannot make
	// progress into an error rather than a hang. It is generous
	// because heavy multiprocessor paging can legitimately evict a
	// just-fetched page before the faulter rereferences, several
	// times in a row, without anything being wrong.
	const maxFaults = 256
	for tries := 0; tries < maxFaults; tries++ {
		if tries == maxFaults/2 {
			// Halfway through the budget this reference is being
			// starved — evictions keep taking its page back before the
			// rereference. Record it now, while the run can still be
			// diagnosed, rather than failing silently at exhaustion.
			k.retryPressure.Add(1)
			if k.Trace != nil {
				k.Trace.Emit(trace.Event{
					Kind: trace.EvRetryPressure, Module: ModUProc,
					Arg0: int64(segno), Arg1: int64(off), Arg2: int64(tries),
				})
			}
		}
		var val hw.Word
		var err error
		if write {
			err = cpu.Write(segno, off, w)
		} else {
			val, err = cpu.Read(segno, off)
		}
		if err == nil {
			return val, nil
		}
		f, ok := hw.AsFault(err)
		if !ok {
			return 0, err
		}
		if herr := k.handleFault(cpu, p, f); herr != nil {
			return 0, herr
		}
		// The faulting call chain has unwound; run any upward
		// signals (relocation notices) and daemon work.
		if derr := k.dispatchSignals(p); derr != nil {
			return 0, derr
		}
		k.VProcs.RunPending()
	}
	k.retryExhausted.Add(1)
	return 0, fmt.Errorf("%w: segment %d offset %d after %d fault services", ErrRetryBudget, segno, off, maxFaults)
}

// dispatchSignals runs pending upward signals under the kernel's gate
// lock, so that a relocation handler's walk down from the directory
// manager holds the top-ranked lock while it acquires module locks
// below — the acquisition order the rank checker certifies. The
// pending check keeps the common no-signal rereference from
// serializing the processors. Acquiring on behalf of p donates p's
// priority to whatever process currently holds the gate.
func (k *Kernel) dispatchSignals(p *uproc.Process) error {
	if k.Signals.Pending() == 0 {
		return nil
	}
	k.gateLock.Acquire(p)
	defer k.gateLock.Release()
	_, err := k.Signals.Dispatch()
	return err
}

// handleFault maps one hardware exception to the manager that owns it.
func (k *Kernel) handleFault(cpu *hw.Processor, p *uproc.Process, f *hw.Fault) error {
	switch f.Kind {
	case hw.FaultMissingSegment:
		return k.gate(cpu, ModKnownSeg, func() error {
			return k.KSM.ServiceMissingSegment(p.KST(), p.DT(), f.Seg)
		})
	case hw.FaultMissingPage:
		// With descriptor-lock hardware the faulting processor set
		// the lock bit and owns the service; a processor that lost
		// the race would have seen FaultLockedDescriptor instead.
		return k.gate(cpu, ModKnownSeg, func() error {
			return k.KSM.ServiceMissingPage(p.KST(), f.Seg, f.Page)
		})
	case hw.FaultLockedDescriptor:
		sdw, err := p.DT().Get(f.Seg)
		if err != nil || !sdw.Present || sdw.Table == nil {
			// The segment vanished under us (relocation); the
			// rereference will take a missing-segment fault.
			return nil
		}
		return k.gate(cpu, ModFrame, func() error {
			return k.Frames.WaitUnlock(cpu, sdw.Table, f.Page)
		})
	case hw.FaultQuota:
		return k.gate(cpu, ModKnownSeg, func() error {
			return k.KSM.ServiceQuotaFault(p.KST(), f.Seg, f.Page, p.ID())
		})
	default:
		// Access, bounds and gate violations belong to the caller.
		return f
	}
}
