package core

// The paper's certification plan includes, as its fourth prong, "a
// tiger team can be assigned the task of breaking into the system."
// This file is that tiger team: each test is an attack on a protection
// mechanism, and passes only if the attack fails in the prescribed,
// information-free way.

import (
	"errors"
	"testing"
	"testing/quick"

	"multics/internal/aim"
	"multics/internal/directory"
	"multics/internal/hw"
)

func TestTigerSystemSegmentsUnreachable(t *testing.T) {
	// Attack: reference the kernel's core segments (vp states,
	// quota table, AST, message queue) by their system segment
	// numbers from the user ring.
	k := boot(t, nil)
	cpu, _ := user(t, k, "mallory.x", aim.Bottom)
	for segno := 0; segno < k.Procs.KSTBase; segno++ {
		if _, err := cpu.Read(segno, 0); err == nil {
			t.Errorf("user-ring read of system segment %d succeeded", segno)
		}
		if err := cpu.Write(segno, 0, 0o777); err == nil {
			t.Errorf("user-ring write of system segment %d succeeded", segno)
		}
	}
	// The quota table still holds kernel data, not 0o777.
	seg, err := k.CoreSegs.Segment("quota-table")
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := seg.Read(0); w == 0o777 {
		t.Error("attack overwrote the quota table")
	}
}

func TestTigerUnopenedSegmentNumbers(t *testing.T) {
	// Attack: reference segment numbers never handed out by the
	// known segment manager, hoping a stale descriptor leaks
	// another process's segment.
	k := boot(t, nil)
	cpu, alice := user(t, k, "alice.sys", aim.Bottom)
	if _, err := k.CreateFile(cpu, alice, nil, "private", directory.Owner("alice.sys"), aim.Bottom); err != nil {
		t.Fatal(err)
	}
	segno, err := k.OpenPath(cpu, alice, []string{"private"})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Write(cpu, alice, segno, 0, 1); err != nil {
		t.Fatal(err)
	}
	mallory, err := k.CreateProcess("mallory.x", aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	cpu2 := k.CPUs[1]
	k.Attach(cpu2, mallory)
	// Mallory tries Alice's segment number in her own space.
	if _, err := k.Read(cpu2, mallory, segno, 0); err == nil {
		t.Error("segment number from another process's space dereferenced")
	}
}

func TestTigerForgedIdentifiers(t *testing.T) {
	// Attack: guess identifiers. A forged identifier must behave
	// exactly like a mythical one: searches "succeed", use is a
	// bare no-access.
	k := boot(t, nil)
	cpu, p := user(t, k, "mallory.x", aim.Bottom)
	if _, err := k.CreateFile(cpu, p, nil, "decoy", directory.Owner("other.user"), aim.Bottom); err != nil {
		t.Fatal(err)
	}
	forged := func(seed uint64) bool {
		id := directory.Identifier(seed | 1)
		_, err := k.Open(cpu, p, id)
		// Either it's a real id Mallory legitimately may use
		// (impossible here: nothing grants mallory.x), or the
		// uniform denial.
		return errors.Is(err, directory.ErrNoAccess)
	}
	if err := quick.Check(forged, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTigerQuotaCannotBeBypassedBySparseness(t *testing.T) {
	// Attack: exceed quota by touching pages far apart, hoping the
	// growth path miscounts holes.
	k := boot(t, nil)
	cpu, p := user(t, k, "mallory.x", aim.Bottom)
	dirID, err := k.CreateDir(cpu, p, nil, "jail", directory.Public(hw.Read|hw.Write), aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.DesignateQuota(cpu, p, dirID, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := k.CreateFile(cpu, p, []string{"jail"}, "f", nil, aim.Bottom); err != nil {
		t.Fatal(err)
	}
	segno, err := k.OpenPath(cpu, p, []string{"jail", "f"})
	if err != nil {
		t.Fatal(err)
	}
	touched := 0
	for _, page := range []int{0, 100, 200, 250, 17, 42} {
		err := k.Write(cpu, p, segno, page*hw.PageWords, 1)
		if err == nil {
			touched++
		}
	}
	// The directory page consumed 1 of the 4; only 3 file pages fit
	// no matter how they are scattered.
	if touched > 3 {
		t.Errorf("%d sparse pages written under a 4-page quota", touched)
	}
}

func TestTigerLabelSmugglingViaCreate(t *testing.T) {
	// Attack: create a low-labelled file inside a high directory so
	// that secret names drain into unclassified objects.
	k := boot(t, nil)
	secret := aim.Label{Level: aim.Secret}
	cpuLow, low := user(t, k, "mallory.x", aim.Bottom)
	if _, err := k.CreateDir(cpuLow, low, nil, "updir", directory.Public(hw.Read|hw.Write), secret); err != nil {
		t.Fatal(err)
	}
	hi, err := k.CreateProcess("mallory.x", secret)
	if err != nil {
		t.Fatal(err)
	}
	cpuHi := k.CPUs[1]
	k.Attach(cpuHi, hi)
	if _, err := k.CreateFile(cpuHi, hi, []string{"updir"}, "leak", directory.Public(hw.Read|hw.Write), aim.Bottom); err == nil {
		t.Error("created an unclassified file inside a secret directory")
	}
	// And the inverse: a low process cannot write entries into the
	// high directory at all.
	if _, err := k.CreateFile(cpuLow, low, []string{"updir"}, "x", nil, secret); !errors.Is(err, directory.ErrNoAccess) {
		t.Errorf("low process wrote a secret directory: %v", err)
	}
}

func TestTigerReadUpThroughSharedSegment(t *testing.T) {
	// Attack: a low process opens a high segment that has a
	// permissive ACL, counting on the discretionary bits alone.
	// AIM must strip read regardless of the ACL.
	k := boot(t, nil)
	secret := aim.Label{Level: aim.Secret}
	cpu, owner := user(t, k, "alice.sys", aim.Bottom)
	if _, err := k.CreateFile(cpu, owner, nil, "intel", directory.Public(hw.Read|hw.Write), secret); err != nil {
		t.Fatal(err)
	}
	mallory, err := k.CreateProcess("mallory.x", aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	cpu2 := k.CPUs[1]
	k.Attach(cpu2, mallory)
	segno, err := k.OpenPath(cpu2, mallory, []string{"intel"})
	if err != nil {
		// Denied outright is also acceptable.
		return
	}
	// If opened (blind append granted by the *-property), reading
	// must still fault.
	if _, err := k.Read(cpu2, mallory, segno, 0); !hw.IsFault(err, hw.FaultAccess) {
		t.Errorf("read up through permissive ACL: %v", err)
	}
	// Blind write up is permitted — and must not be readable back.
	if err := k.Write(cpu2, mallory, segno, 0, 7); err != nil {
		t.Logf("write up also denied: %v (stricter than required)", err)
	}
	if _, err := k.Read(cpu2, mallory, segno, 0); err == nil {
		t.Error("read-back after blind write succeeded")
	}
}

func TestTigerGateDiscipline(t *testing.T) {
	// Attack: transfer into ring zero without a gate.
	k := boot(t, nil)
	cpu, _ := user(t, k, "mallory.x", aim.Bottom)
	err := cpu.GateCall(hw.KernelRing, false, func() error { return nil })
	if !hw.IsFault(err, hw.FaultGate) {
		t.Errorf("non-gate inward transfer: %v", err)
	}
}

func TestTigerProbeCostChannel(t *testing.T) {
	// Attack: distinguish existing from nonexistent secret names by
	// the *cost* of the probe (a timing channel). The simulated
	// cycle meter makes this exactly measurable: the two probes
	// must cost the same.
	k := boot(t, nil)
	cpu, alice := user(t, k, "alice.sys", aim.Bottom)
	if _, err := k.CreateDir(cpu, alice, nil, "hidden", directory.ACL{{Pattern: "alice.sys", Mode: hw.Read | hw.Write}}, aim.Bottom); err != nil {
		t.Fatal(err)
	}
	if _, err := k.CreateFile(cpu, alice, []string{"hidden"}, "real-secret", directory.Owner("alice.sys"), aim.Bottom); err != nil {
		t.Fatal(err)
	}
	mallory, err := k.CreateProcess("mallory.x", aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	cpu2 := k.CPUs[1]
	k.Attach(cpu2, mallory)
	hiddenID, err := k.WalkPath(cpu2, mallory, []string{"hidden"})
	if err != nil {
		t.Fatal(err)
	}
	probe := func(name string) int64 {
		k.Meter.Reset()
		if _, err := k.Search(cpu2, mallory, hiddenID, name); err != nil {
			t.Fatal(err)
		}
		return k.Meter.Cycles()
	}
	real1 := probe("real-secret")
	myth := probe("no-such-name")
	if real1 != myth {
		t.Errorf("probe cost reveals existence: real %d vs mythical %d cycles", real1, myth)
	}
}

func TestTigerMythicalIdentifierStatistics(t *testing.T) {
	// Attack: classify identifiers as real or mythical by their
	// bit patterns. Both are 64-bit hash outputs; check the crude
	// distinguishers an attacker would try first (range, parity,
	// small-value clustering).
	k := boot(t, nil)
	cpu, alice := user(t, k, "alice.sys", aim.Bottom)
	if _, err := k.CreateDir(cpu, alice, nil, "h", directory.ACL{{Pattern: "alice.sys", Mode: hw.Read | hw.Write}}, aim.Bottom); err != nil {
		t.Fatal(err)
	}
	var realIDs, mythIDs []uint64
	for i := 0; i < 64; i++ {
		name := string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		id, err := k.CreateFile(cpu, alice, []string{"h"}, name, directory.Owner("alice.sys"), aim.Bottom)
		if err != nil {
			t.Fatal(err)
		}
		realIDs = append(realIDs, uint64(id))
	}
	mallory, err := k.CreateProcess("mallory.x", aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	cpu2 := k.CPUs[1]
	k.Attach(cpu2, mallory)
	hID, err := k.WalkPath(cpu2, mallory, []string{"h"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		name := string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + "-ghost"
		id, err := k.Search(cpu2, mallory, hID, name)
		if err != nil {
			t.Fatal(err)
		}
		mythIDs = append(mythIDs, uint64(id))
	}
	highBits := func(ids []uint64) int {
		n := 0
		for _, id := range ids {
			if id>>63 == 1 {
				n++
			}
		}
		return n
	}
	// Both populations should have roughly half their top bits set
	// (a sequential-counter scheme would fail this instantly).
	for _, pop := range []struct {
		name string
		ids  []uint64
	}{{"real", realIDs}, {"mythical", mythIDs}} {
		h := highBits(pop.ids)
		if h < 16 || h > 48 {
			t.Errorf("%s identifiers look non-uniform: %d/64 top bits set", pop.name, h)
		}
	}
}

func TestTigerBoundsAndNegativeOffsets(t *testing.T) {
	// Attack: drive the fault loop with degenerate addresses.
	k := boot(t, nil)
	cpu, p := user(t, k, "mallory.x", aim.Bottom)
	if _, err := k.CreateFile(cpu, p, nil, "f", nil, aim.Bottom); err != nil {
		t.Fatal(err)
	}
	segno, err := k.OpenPath(cpu, p, []string{"f"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Read(cpu, p, segno, -1); !hw.IsFault(err, hw.FaultBounds) {
		t.Errorf("negative offset: %v", err)
	}
	// Beyond the architectural maximum: bounds, not growth.
	if err := k.Write(cpu, p, segno, 300*hw.PageWords, 1); err == nil {
		t.Error("write beyond the architectural maximum succeeded")
	}
	// The process is still healthy afterwards.
	if err := k.Write(cpu, p, segno, 0, 5); err != nil {
		t.Errorf("process wedged after degenerate references: %v", err)
	}
}
