package core

// Randomized whole-system tests: a seeded pseudo-random workload runs
// against the kernel, a shadow model checks data integrity, and the
// global storage-accounting invariant — every allocated disk record is
// charged to exactly one quota cell — is verified at quiescent points.

import (
	"fmt"
	"math/rand"
	"testing"

	"multics/internal/aim"
	"multics/internal/directory"
	"multics/internal/disk"
	"multics/internal/hw"
	"multics/internal/quota"
)

// accountingBalance returns (total pages charged across every quota
// cell, total records allocated across every pack).
func accountingBalance(t *testing.T, k *Kernel) (charged, allocated int) {
	t.Helper()
	for _, packID := range k.Vols.Packs() {
		pack, err := k.Vols.Pack(packID)
		if err != nil {
			t.Fatal(err)
		}
		allocated += pack.UsedRecords()
		pack.EachEntry(func(idx disk.TOCIndex, e disk.TOCEntry) {
			if !e.Quota.Valid {
				return
			}
			cell := quota.CellName{Pack: packID, TOC: idx}
			if k.Cells.Active(cell) {
				_, used, err := k.Cells.Info(cell)
				if err != nil {
					t.Fatal(err)
				}
				charged += used
			} else {
				charged += e.Quota.Used
			}
		})
	}
	return charged, allocated
}

func TestGlobalAccountingInvariant(t *testing.T) {
	const (
		nFiles = 6
		nOps   = 400
	)
	k := boot(t, func(c *Config) {
		c.MemFrames = 24 // pressure: zero-page reclaim and eviction happen
		c.WiredFrames = 8
		c.RootQuota = 4096
	})
	cpu, p := user(t, k, "fuzz.x", aim.Bottom)
	rng := rand.New(rand.NewSource(1977))

	// A hierarchy with a couple of quota directories.
	if _, err := k.CreateDir(cpu, p, nil, "a", directory.Public(hw.Read|hw.Write), aim.Bottom); err != nil {
		t.Fatal(err)
	}
	subID, err := k.CreateDir(cpu, p, []string{"a"}, "b", directory.Public(hw.Read|hw.Write), aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.DesignateQuota(cpu, p, subID, 512); err != nil {
		t.Fatal(err)
	}
	dirs := [][]string{nil, {"a"}, {"a", "b"}}

	type file struct {
		path  []string
		segno int
		open  bool
	}
	var files []*file
	for i := 0; i < nFiles; i++ {
		dir := dirs[rng.Intn(len(dirs))]
		name := fmt.Sprintf("f%d", i)
		if _, err := k.CreateFile(cpu, p, dir, name, nil, aim.Bottom); err != nil {
			t.Fatal(err)
		}
		files = append(files, &file{path: append(append([]string{}, dir...), name)})
	}
	// Shadow model: file index -> offset -> value.
	shadow := make([]map[int]hw.Word, nFiles)
	for i := range shadow {
		shadow[i] = make(map[int]hw.Word)
	}

	openFile := func(f *file) error {
		if f.open {
			return nil
		}
		segno, err := k.OpenPath(cpu, p, f.path)
		if err != nil {
			return err
		}
		f.segno = segno
		f.open = true
		return nil
	}

	for op := 0; op < nOps; op++ {
		i := rng.Intn(nFiles)
		f := files[i]
		if err := openFile(f); err != nil {
			t.Fatalf("op %d open %v: %v", op, f.path, err)
		}
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // write a random word
			page := rng.Intn(12)
			off := page*hw.PageWords + rng.Intn(hw.PageWords)
			val := hw.Word(rng.Intn(1 << 18))
			if err := k.Write(cpu, p, f.segno, off, val); err != nil {
				t.Fatalf("op %d write %v+%d: %v", op, f.path, off, err)
			}
			shadow[i][off] = val
		case 5, 6, 7: // read back a known word
			if len(shadow[i]) == 0 {
				continue
			}
			var off int
			for o := range shadow[i] {
				off = o
				break
			}
			got, err := k.Read(cpu, p, f.segno, off)
			if err != nil {
				t.Fatalf("op %d read %v+%d: %v", op, f.path, off, err)
			}
			if got != shadow[i][off] {
				t.Fatalf("op %d: %v+%d = %d, shadow says %d", op, f.path, off, got, shadow[i][off])
			}
		case 8: // read a never-written word (zero or hole)
			off := rng.Intn(12 * hw.PageWords)
			if _, ok := shadow[i][off]; ok {
				continue
			}
			got, err := k.Read(cpu, p, f.segno, off)
			if err != nil {
				t.Fatalf("op %d hole read: %v", op, err)
			}
			if got != 0 {
				// Another word on the same page may be set; only
				// fail if the exact offset was never written.
				t.Fatalf("op %d: hole %v+%d = %d", op, f.path, off, got)
			}
		case 9: // deactivate (forces flush; zero pages reclaimed)
			e, err := p.KST().Entry(f.segno)
			if err != nil {
				t.Fatal(err)
			}
			// A known-but-never-referenced segment is not active
			// yet; deactivation only applies to active ones.
			if _, err := k.Segs.Lookup(e.UID); err == nil {
				if err := k.Segs.Deactivate(e.UID); err != nil {
					t.Fatalf("op %d deactivate: %v", op, err)
				}
			}
			f.open = true // segno stays known; reconnection is automatic
		}
		if op%50 == 49 {
			charged, allocated := accountingBalance(t, k)
			if charged != allocated {
				t.Fatalf("op %d: %d pages charged vs %d records allocated", op, charged, allocated)
			}
		}
	}
	// Full verification pass at the end.
	for i, f := range files {
		if err := openFile(f); err != nil {
			t.Fatal(err)
		}
		for off, want := range shadow[i] {
			got, err := k.Read(cpu, p, f.segno, off)
			if err != nil {
				t.Fatalf("final read %v+%d: %v", f.path, off, err)
			}
			if got != want {
				t.Fatalf("final %v+%d = %d, want %d", f.path, off, got, want)
			}
		}
	}
	charged, allocated := accountingBalance(t, k)
	if charged != allocated {
		t.Fatalf("final balance: %d charged vs %d allocated", charged, allocated)
	}
}
