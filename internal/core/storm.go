package core

import (
	"multics/internal/answering"
	"multics/internal/hw"
	"multics/internal/uproc"
)

// StormOps adapts the kernel's process plane to the answering
// service's login-storm driver. The answering service stays above the
// process-plane abstraction — it sees opaque handles — and this is
// the one place where the handles are given back their type.
func (k *Kernel) StormOps(ex uproc.Executor, cpus []*hw.Processor) answering.StormOps {
	return answering.StormOps{
		RunQuanta: func(n int, body func(proc any)) (int, error) {
			return k.Procs.RunQuantumWith(ex, cpus, n, func(_ *hw.Processor, p *uproc.Process) {
				body(p)
			})
		},
		Block: func(proc any) error {
			// A nil eventcount blocks until any wakeup message
			// addressed to the process arrives.
			return k.Procs.Block(proc.(*uproc.Process), nil, 0)
		},
		Wake: func(proc any) error {
			return k.Procs.Wakeup(proc.(*uproc.Process).ID(), 0)
		},
		Deliver: func() (int, error) { return k.Procs.DeliverEvents() },
		Destroy: func(proc any) error { return k.Procs.Destroy(proc.(*uproc.Process)) },
		CPUOf:   func(proc any) int64 { return proc.(*uproc.Process).CPU() },
	}
}
