package core

// Multiprocessor shootdown stress: the associative-memory analogue of
// the gate storm. Four CPUs share one public segment and rewrite
// private churn files under heavy frame pressure, so pages of the
// shared segment are evicted and re-faulted while other processors
// hold cached translations of them. Every read verifies the exact word
// written: a stale translation surviving a shootdown would read a
// frame reused for someone else's page and return the wrong value.
// Run with -race.
//
// All pages are materialized serially before the storm. First touch of
// a never-used page raises a quota-trap fault, which (unlike a
// missing-page fault) has no descriptor-lock serialization, and the
// zero-page reclaim propagates its file-map updates through whichever
// caller triggered the eviction — so concurrent first touches of one
// page are the caller's problem, exactly as concurrent uncoordinated
// stores to one word are. The storm therefore drives all its paging
// through the missing-page path, which the descriptor lock serializes.

import (
	"fmt"
	"sync"
	"testing"

	"multics/internal/aim"
	"multics/internal/directory"
	"multics/internal/hw"
	"multics/internal/uproc"
)

func TestSMPShootdownNoStaleTranslation(t *testing.T) {
	const (
		nCPU       = 4
		rounds     = 5
		sharedPgs  = 6
		churnPgs   = 8
		churnFiles = 2
	)
	k := boot(t, func(c *Config) {
		c.Processors = nCPU
		c.MemFrames = 40 // far smaller than the combined working sets
		c.WiredFrames = 8
		c.RootQuota = 4096
	})
	if k.AssocBus == nil {
		t.Fatal("associative memory should be on by default")
	}

	type worker struct {
		cpu   *hw.Processor
		p     *uproc.Process
		churn []int // churn segment numbers
	}
	var workers []*worker
	for i := 0; i < nCPU; i++ {
		p, err := k.CreateProcess(fmt.Sprintf("shoot%d.x", i), aim.Bottom)
		if err != nil {
			t.Fatal(err)
		}
		cpu := k.CPUs[i]
		k.Attach(cpu, p)
		workers = append(workers, &worker{cpu: cpu, p: p})
	}

	// One shared world-writable segment everyone opens; every page
	// carries a sentinel word no worker overwrites, so eviction never
	// finds the page zero and reverts it to the quota-trapped state.
	w0 := workers[0]
	if _, err := k.CreateFile(w0.cpu, w0.p, nil, "shared", directory.Public(hw.Read|hw.Write), aim.Bottom); err != nil {
		t.Fatal(err)
	}
	shared := make([]int, nCPU)
	for wi, w := range workers {
		segno, err := k.OpenPath(w.cpu, w.p, []string{"shared"})
		if err != nil {
			t.Fatal(err)
		}
		shared[wi] = segno
	}
	for pg := 0; pg < sharedPgs; pg++ {
		if err := k.Write(w0.cpu, w0.p, shared[0], pg*hw.PageWords+nCPU, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Each worker's private churn files, fully materialized. Their
	// combined working sets dwarf the pageable frames, so every round
	// of rewrites forces evictions of other workers' pages.
	for wi, w := range workers {
		for cf := 0; cf < churnFiles; cf++ {
			name := fmt.Sprintf("churn%d-%d", wi, cf)
			if _, err := k.CreateFile(w.cpu, w.p, nil, name, nil, aim.Bottom); err != nil {
				t.Fatal(err)
			}
			cseg, err := k.OpenPath(w.cpu, w.p, []string{name})
			if err != nil {
				t.Fatal(err)
			}
			for pg := 0; pg < churnPgs; pg++ {
				if err := k.Write(w.cpu, w.p, cseg, pg*hw.PageWords, hw.Word(wi*churnPgs+pg+1)); err != nil {
					t.Fatal(err)
				}
			}
			w.churn = append(w.churn, cseg)
		}
	}

	charged, allocated := accountingBalance(t, k)
	if charged != allocated {
		t.Fatalf("unbalanced before storm: %d charged vs %d allocated", charged, allocated)
	}
	chargedBefore := charged

	var wg sync.WaitGroup
	errs := make(chan error, nCPU)
	for wi, w := range workers {
		wg.Add(1)
		go func(wi int, w *worker) {
			defer wg.Done()
			fail := func(err error) { errs <- fmt.Errorf("worker %d: %w", wi, err) }
			segno := shared[wi]
			for r := 0; r < rounds; r++ {
				// Write this worker's slot of every shared page;
				// the churn below evicts these pages out from
				// under the other processors' caches.
				base := hw.Word(10000*(wi+1) + 100*r)
				for pg := 0; pg < sharedPgs; pg++ {
					if err := k.Write(w.cpu, w.p, segno, pg*hw.PageWords+wi, base+hw.Word(pg)); err != nil {
						fail(err)
						return
					}
				}
				for _, cseg := range w.churn {
					for pg := 0; pg < churnPgs; pg++ {
						if err := k.Write(w.cpu, w.p, cseg, pg*hw.PageWords+1+r, hw.Word(wi*churnPgs+pg+1)); err != nil {
							fail(err)
							return
						}
					}
				}
				// Read-after-evict: the shared pages were likely
				// evicted and reloaded; a stale cached PTW would
				// now point at a recycled frame.
				for pg := 0; pg < sharedPgs; pg++ {
					got, err := k.Read(w.cpu, w.p, segno, pg*hw.PageWords+wi)
					if err != nil {
						fail(err)
						return
					}
					if got != base+hw.Word(pg) {
						fail(fmt.Errorf("round %d shared page %d slot %d = %d, want %d (stale translation?)",
							r, pg, wi, got, base+hw.Word(pg)))
						return
					}
				}
			}
		}(wi, w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := k.Frames.Stats()
	if st.Evictions == 0 {
		t.Error("storm produced no evictions; the test applied no pressure")
	}
	if st.Shootdowns == 0 {
		t.Error("storm produced no shootdowns; the cross-CPU invalidation path was not exercised")
	}
	if st.AssocHits == 0 {
		t.Error("storm produced no associative hits; the cache was not exercised")
	}

	// Nothing was created or destroyed by the storm: the books must
	// still balance at the pre-storm figure exactly.
	charged, allocated = accountingBalance(t, k)
	if charged != allocated {
		t.Errorf("after storm: %d pages charged vs %d records allocated", charged, allocated)
	}
	if charged != chargedBefore {
		t.Errorf("after storm: %d pages charged, want the pre-storm %d", charged, chargedBefore)
	}
	// Serial teardown: the churn files go, and the books must follow.
	for wi, w := range workers {
		for cf := 0; cf < churnFiles; cf++ {
			if err := k.Delete(w.cpu, w.p, nil, fmt.Sprintf("churn%d-%d", wi, cf)); err != nil {
				t.Fatal(err)
			}
		}
	}
	charged, allocated = accountingBalance(t, k)
	if charged != allocated {
		t.Errorf("after teardown: %d pages charged vs %d records allocated", charged, allocated)
	}
	if bad := k.Frames.Audit(); len(bad) != 0 {
		t.Errorf("page frame audit: %v", bad)
	}
	if bad := k.Segs.Audit(); len(bad) != 0 {
		t.Errorf("segment audit: %v", bad)
	}
	if bad := k.KSM.Audit(); len(bad) != 0 {
		t.Errorf("KST audit: %v", bad)
	}
}
