package core

// Systematic sweep around the disk pipeline's yield points. The
// device queue brackets every transfer with two marked decisions —
// PointDiskQueue when a request joins a pack's elevator queue and
// PointDisk when its transfer completes — and this sweep forces
// preemptions there to race a completion against a second faulter on
// the same record. The descriptor-lock hardware must let exactly one
// processor service each missing page: the loser waits out the lock
// bit and rereferences, it never queues a second read of the same
// record into a second frame.

import (
	"fmt"
	"testing"

	"multics/internal/aim"
	"multics/internal/hw"
	"multics/internal/schedsim"
	"multics/internal/trace"
)

// diskSweepStorm races two processors of one process through
// sequential reads of the same freshly-deactivated file, so every
// page is a demand read from disk and both tasks contend for every
// record. It returns an error for any schedule that loses data,
// double-loads a page, or unbalances the frame tables.
func diskSweepStorm(strat schedsim.Strategy, pgs int) (*schedsim.Executor, *Kernel, error) {
	cfg := DefaultConfig()
	cfg.Processors = 2
	cfg.MemFrames = 64 // roomy: any eviction here would muddy the fault count
	cfg.WiredFrames = 8
	cfg.RootQuota = 4096
	k, err := Boot(cfg)
	if err != nil {
		return nil, nil, err
	}
	p, err := k.CreateProcess("dsw.x", aim.Bottom)
	if err != nil {
		return nil, nil, err
	}
	k.Attach(k.CPUs[0], p)
	k.Attach(k.CPUs[1], p)
	if _, err := k.CreateFile(k.CPUs[0], p, nil, "shared", nil, aim.Bottom); err != nil {
		return nil, nil, err
	}
	segno, err := k.OpenPath(k.CPUs[0], p, []string{"shared"})
	if err != nil {
		return nil, nil, err
	}
	for pg := 0; pg < pgs; pg++ {
		if err := k.Write(k.CPUs[0], p, segno, pg*hw.PageWords, hw.Word(100+pg)); err != nil {
			return nil, nil, err
		}
	}
	// Force every page out to its disk record: the next touch of any
	// page is a demand read on the pack's device queue.
	e, err := p.KST().Entry(segno)
	if err != nil {
		return nil, nil, err
	}
	if err := k.Segs.Deactivate(e.UID); err != nil {
		return nil, nil, err
	}
	base := k.Frames.Stats()

	ex := schedsim.New(schedsim.Config{Name: "disk-sweep", Strategy: strat})
	for i := 0; i < 2; i++ {
		cpu := k.CPUs[i]
		ex.Go(fmt.Sprintf("fault%d", i), func() {
			defer trace.BindCPU(cpu.ID)()
			for pg := 0; pg < pgs; pg++ {
				got, err := k.Read(cpu, p, segno, pg*hw.PageWords)
				if err != nil {
					panic(fmt.Sprintf("read page %d: %v", pg, err))
				}
				if got != hw.Word(100+pg) {
					panic(fmt.Sprintf("page %d reads %d, want %d", pg, got, 100+pg))
				}
			}
		})
	}
	if err := ex.Run(); err != nil {
		return ex, k, err
	}
	st := k.Frames.Stats()
	if d := st.Evictions - base.Evictions; d != 0 {
		return ex, k, fmt.Errorf("unexpected evictions (%d) under a no-pressure configuration", d)
	}
	// The pin: pgs distinct pages went from stored to present, so
	// exactly pgs fault services may have run. One more means a
	// schedule slipped a second load of an already-serviced record
	// past the descriptor lock.
	if d := st.Faults - base.Faults; d != int64(pgs) {
		return ex, k, fmt.Errorf("%d fault services for %d distinct pages: a completion raced a second faulter into a double load", d, pgs)
	}
	if leaks := k.Frames.Audit(); len(leaks) != 0 {
		return ex, k, fmt.Errorf("frame audit: %v", leaks)
	}
	if err := simBalance(k); err != nil {
		return ex, k, err
	}
	return ex, k, nil
}

// TestSweepDiskCompletionWindow systematically deviates at the device
// queue's enqueue and completion decisions. Every completed schedule
// must read correct data with exactly one fault service per page —
// no double-loads — and the sweep must actually open disk-window
// decisions and contend the descriptor lock, or it verified nothing.
func TestSweepDiskCompletionWindow(t *testing.T) {
	completed := 0
	maxSched, maxPre := schedsim.EnvBudget(64, 2)
	rep, err := schedsim.Sweep(schedsim.SweepConfig{
		MaxSchedules:   maxSched,
		MaxPreemptions: maxPre,
		Window: func(d schedsim.Decision) bool {
			return d.Point == schedsim.PointDiskQueue || d.Point == schedsim.PointDisk
		},
	}, func(strat schedsim.Strategy) (*schedsim.Executor, error) {
		ex, _, err := diskSweepStorm(strat, 4)
		if starved(err) {
			return ex, nil
		}
		if err == nil {
			completed++
		}
		return ex, err
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WindowDecisions == 0 {
		t.Fatalf("sweep vacuous: no disk-queue or disk-completion decisions in %d schedules", rep.Schedules)
	}
	if completed == 0 {
		t.Fatal("every schedule was starved: the sweep verified nothing")
	}
	t.Logf("%d schedules (%d completed), %d in-window decisions, truncated=%v",
		rep.Schedules, completed, rep.WindowDecisions, rep.Truncated)
}

// TestSweepDiskWindowReplay is the determinism anchor for the disk
// yield points: the same sticky-preemption schedule over the disk
// storm takes the same decisions, step for step, both times.
func TestSweepDiskWindowReplay(t *testing.T) {
	run := func() []schedsim.Decision {
		ex, _, err := diskSweepStorm(schedsim.Random(*schedSeed), 4)
		if err != nil && !starved(err) {
			t.Fatal(err)
		}
		return ex.Decisions()
	}
	d1, d2 := run(), run()
	if len(d1) != len(d2) {
		t.Fatalf("schedule lengths differ: %d vs %d decisions", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i].String() != d2[i].String() {
			t.Fatalf("schedules diverge at step %d:\n%v\n%v", i, d1[i], d2[i])
		}
	}
	saw := false
	for _, d := range d1 {
		if d.Point == schedsim.PointDiskQueue || d.Point == schedsim.PointDisk {
			saw = true
			break
		}
	}
	if !saw {
		t.Error("no disk-queue or disk-completion decisions in the replayed schedule: the pipeline's yield points are not marked")
	}
}
