package core

import (
	"testing"

	"multics/internal/aim"
	"multics/internal/answering"
	"multics/internal/directory"
	"multics/internal/fnp"
	"multics/internal/hw"
	"multics/internal/netmux"
	"multics/internal/uproc"
)

// attachNode boots a kernel and wires a small network plane to it.
func attachNode(t *testing.T, conns int) *NetNode {
	t.Helper()
	k := boot(t, nil)
	n, err := k.AttachFNP(conns, 4)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestRemoteSegmentRoundTrip moves data between two booted kernels
// over the inter-node channel: a read must return byte-identical
// contents, and a copy must land them byte-identically in a local
// segment.
func TestRemoteSegmentRoundTrip(t *testing.T) {
	nodeA := attachNode(t, 8)
	nodeB := attachNode(t, 8)
	link, err := Connect(nodeA, nodeB)
	if err != nil {
		t.Fatal(err)
	}

	// A user on node B publishes a file.
	kb := nodeB.K
	cpuB, bob := user(t, kb, "bob.dev", aim.Bottom)
	if _, err := kb.CreateFile(cpuB, bob, nil, "shared", directory.Public(hw.Read|hw.Write), aim.Bottom); err != nil {
		t.Fatal(err)
	}
	segB, err := kb.OpenPath(cpuB, bob, []string{"shared"})
	if err != nil {
		t.Fatal(err)
	}
	const n = 48
	want := make([]hw.Word, n)
	for i := range want {
		want[i] = hw.Word(0o1000*i + 7)
		if err := kb.Write(cpuB, bob, segB, i, want[i]); err != nil {
			t.Fatal(err)
		}
	}

	// Remote read from node A: byte-identical.
	got, err := link.RemoteRead([]string{"shared"}, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("remote read word %d = %o, want %o", i, got[i], want[i])
		}
	}

	// Remote copy into a segment on node A: byte-identical after the
	// local write path (faults, quota, paging) has run.
	ka := nodeA.K
	cpuA, alice := user(t, ka, "alice.sys", aim.Bottom)
	if _, err := ka.CreateFile(cpuA, alice, nil, "mirror", nil, aim.Bottom); err != nil {
		t.Fatal(err)
	}
	segA, err := ka.OpenPath(cpuA, alice, []string{"mirror"})
	if err != nil {
		t.Fatal(err)
	}
	moved, err := link.RemoteCopy(cpuA, alice, []string{"shared"}, 0, n, segA, 0)
	if err != nil {
		t.Fatal(err)
	}
	if moved != n {
		t.Fatalf("copied %d words, want %d", moved, n)
	}
	for i := range want {
		w, err := ka.Read(cpuA, alice, segA, i)
		if err != nil || w != want[i] {
			t.Fatalf("copied word %d = %o (%v), want %o", i, w, err, want[i])
		}
	}

	// Both internode connection tables balanced their credits.
	for _, node := range []*NetNode{nodeA, nodeB} {
		st := node.Inter.Stats()
		if st.Frames != st.Delivered || st.Frames != st.Credits || st.Drops != 0 {
			t.Errorf("internode table unbalanced: %+v", st)
		}
	}
}

// TestRemoteReadHonorsACL checks the remote-segment gate's security
// story: remote traffic runs as the serving principal, and a file
// that principal cannot read stays unreadable from the other node.
func TestRemoteReadHonorsACL(t *testing.T) {
	nodeA := attachNode(t, 4)
	nodeB := attachNode(t, 4)
	link, err := Connect(nodeA, nodeB)
	if err != nil {
		t.Fatal(err)
	}
	kb := nodeB.K
	cpuB, bob := user(t, kb, "bob.dev", aim.Bottom)
	if _, err := kb.CreateFile(cpuB, bob, nil, "private", directory.ACL{
		{Pattern: "bob.dev", Mode: hw.Read | hw.Write},
	}, aim.Bottom); err != nil {
		t.Fatal(err)
	}
	segB, err := kb.OpenPath(cpuB, bob, []string{"private"})
	if err != nil {
		t.Fatal(err)
	}
	if err := kb.Write(cpuB, bob, segB, 0, 42); err != nil {
		t.Fatal(err)
	}
	if _, err := link.RemoteRead([]string{"private"}, 0, 1); err == nil {
		t.Fatal("remote read of an ACL-protected file succeeded")
	}
	if _, err := link.RemoteRead([]string{"no-such-file"}, 0, 1); err == nil {
		t.Fatal("remote read of a missing file succeeded")
	}
}

// TestInternodeProtocolErrors drives malformed frames at the
// internode network: they are rejected, counted, and never reach the
// connection tables.
func TestInternodeProtocolErrors(t *testing.T) {
	nodeA := attachNode(t, 4)
	nodeB := attachNode(t, 4)
	if _, err := Connect(nodeA, nodeB); err != nil {
		t.Fatal(err)
	}
	if _, err := Connect(nodeA, nodeA); err == nil {
		t.Fatal("self-link accepted")
	}
	// Unknown opcode and empty frame.
	if err := nodeB.Mux.Deliver(nil, "internode", netmux.Frame{Channel: 0, Payload: []hw.Word{99}}); err == nil {
		t.Fatal("unknown internode op accepted")
	}
	if err := nodeB.Mux.Deliver(nil, "internode", netmux.Frame{Channel: 0}); err == nil {
		t.Fatal("empty internode frame accepted")
	}
	if st := nodeB.Mux.MuxStats(); st.ProtocolErrors != 2 {
		t.Fatalf("ProtocolErrors = %d, want 2", st.ProtocolErrors)
	}
	if st := nodeB.Inter.Stats(); st.Frames != 0 {
		t.Fatalf("rejected frames reached the connection table: %+v", st)
	}
	// A well-formed but semantically broken request errors through
	// the gate without wedging the link.
	link2, err := Connect(nodeB, nodeA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := link2.RemoteRead(nil, 0, -1); err == nil {
		t.Fatal("negative-length remote read succeeded")
	}
}

// TestConnectionDrivenLogin drives the answering service purely
// through the connection plane: login, IO and logout arrive as
// terminal frames through the mux and the sharded connection table,
// and sessions open and close with no direct Login/Logout calls.
func TestConnectionDrivenLogin(t *testing.T) {
	node := attachNode(t, 16)
	k := node.K
	svc := answering.New(answering.Split, k.Meter, func(principal string, label aim.Label) (any, error) {
		return k.CreateProcess(principal, label)
	})
	conn := answering.NewConnector(svc, func(proc any) error {
		return k.Procs.Destroy(proc.(*uproc.Process))
	})
	for i := 0; i < 8; i++ {
		if err := svc.Register(answering.StormPrincipal(i), "storm-pw", aim.Top); err != nil {
			t.Fatal(err)
		}
	}

	send := func(term int, line string) {
		payload := append(answering.EncodeLine(line), 0o777)
		if err := node.Mux.Deliver(nil, "front-end", netmux.Frame{Channel: term, Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	drain := func() {
		for sh := 0; sh < node.Terminals.Shards(); sh++ {
			node.Terminals.Drain(sh, func(d fnp.Delivery) {
				// Dialog errors are outcomes, not delivery failures.
				_ = conn.HandleFrame(d.Conn, d.Data)
			})
		}
	}

	for i := 0; i < 8; i++ {
		send(i, "login "+answering.StormPrincipal(i)+" storm-pw")
	}
	drain()
	for i := 0; i < 8; i++ {
		if conn.Session(i) == nil {
			t.Fatalf("terminal %d has no session after login line", i)
		}
		send(i, "print working_dir")
	}
	send(12, "stray line") // no session: orphan
	drain()
	for i := 0; i < 8; i++ {
		send(i, "logout")
	}
	drain()
	st := conn.Stats()
	if st.Logins != 8 || st.Logouts != 8 {
		t.Fatalf("logins/logouts = %d/%d, want 8/8", st.Logins, st.Logouts)
	}
	if st.IOFrames != 8 || st.Orphans != 1 {
		t.Fatalf("io/orphans = %d/%d, want 8/1", st.IOFrames, st.Orphans)
	}
	for _, rec := range svc.Records() {
		if rec.Open {
			t.Fatalf("session %s still open after logout line", rec.Principal)
		}
	}
	if st := node.Terminals.Stats(); st.Frames != st.Delivered || st.Drops != 0 {
		t.Fatalf("connection plane unbalanced: %+v", st)
	}
}
