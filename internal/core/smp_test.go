package core

// Multiprocessor stress: two simulated CPUs drive two processes
// through the full fault machinery concurrently, under memory
// pressure, sharing every kernel structure (frame pool, AST, quota
// cells, packs). Data must come out intact and the post-storm audit
// must be clean. Run with -race to exercise the locking.

import (
	"fmt"
	"sync"
	"testing"

	"multics/internal/aim"
	"multics/internal/hw"
	"multics/internal/uproc"
)

func TestSMPStress(t *testing.T) {
	k := boot(t, func(c *Config) {
		c.MemFrames = 28 // pressure: the two working sets exceed this
		c.WiredFrames = 8
		c.RootQuota = 4096
	})
	type worker struct {
		cpu   *hw.Processor
		p     *uproc.Process
		segno int
	}
	var workers []*worker
	for i := 0; i < 2; i++ {
		p, err := k.CreateProcess(fmt.Sprintf("user%d.x", i), aim.Bottom)
		if err != nil {
			t.Fatal(err)
		}
		cpu := k.CPUs[i]
		k.Attach(cpu, p)
		name := fmt.Sprintf("f%d", i)
		if _, err := k.CreateFile(cpu, p, nil, name, nil, aim.Bottom); err != nil {
			t.Fatal(err)
		}
		segno, err := k.OpenPath(cpu, p, []string{name})
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, &worker{cpu: cpu, p: p, segno: segno})
	}
	const pages = 16
	const rounds = 8
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for wi, w := range workers {
		wg.Add(1)
		go func(wi int, w *worker) {
			defer wg.Done()
			base := hw.Word(1000 * (wi + 1))
			for r := 0; r < rounds; r++ {
				for pg := 0; pg < pages; pg++ {
					if err := k.Write(w.cpu, w.p, w.segno, pg*hw.PageWords+r, base+hw.Word(pg)); err != nil {
						errs <- fmt.Errorf("worker %d write r%d p%d: %w", wi, r, pg, err)
						return
					}
				}
				for pg := 0; pg < pages; pg++ {
					got, err := k.Read(w.cpu, w.p, w.segno, pg*hw.PageWords+r)
					if err != nil {
						errs <- fmt.Errorf("worker %d read r%d p%d: %w", wi, r, pg, err)
						return
					}
					if got != base+hw.Word(pg) {
						errs <- fmt.Errorf("worker %d r%d p%d = %d, want %d", wi, r, pg, got, base+hw.Word(pg))
						return
					}
				}
			}
		}(wi, w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The storm must have caused real contention: evictions on a
	// shared frame pool.
	if evictions := k.Frames.Stats().Evictions; evictions == 0 {
		t.Error("no evictions; the stress fixture is too small")
	}
	// Every invariant still holds.
	if bad := k.Frames.Audit(); len(bad) != 0 {
		t.Errorf("page frame audit after storm: %v", bad)
	}
	if bad := k.Segs.Audit(); len(bad) != 0 {
		t.Errorf("segment audit after storm: %v", bad)
	}
	if bad := k.KSM.Audit(); len(bad) != 0 {
		t.Errorf("KST audit after storm: %v", bad)
	}
}
