package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"multics/internal/aim"
	"multics/internal/fnp"
	"multics/internal/hw"
	"multics/internal/netmux"
	"multics/internal/trace"
	"multics/internal/uproc"
)

// InternodeModule names the inter-node segment channel in kernel
// traces; AttachFNP registers it alongside the demux and the
// connection plane.
const InternodeModule = "internode-channel"

// bodyRemoteServe is the per-request algorithm body of the
// remote-segment gate: parsing, validation and reply framing (the
// segment references themselves are charged by the managers).
const bodyRemoteServe = 25

// Internode channel assignments: one link multiplexes a request
// stream and a reply stream.
const (
	interLinks  = 2
	chanRequest = 0
	chanReply   = 1
)

// Internode operation words (netmux.Internode validates them).
const (
	opRead  = 0
	opReply = 1
)

// NetPrincipal is the serving process a Connect creates on the remote
// node: remote segment traffic runs with its identity, so ACLs and
// mandatory labels govern inter-node reads exactly as local ones.
const NetPrincipal = "netd.sys"

// A NetNode is one kernel's attachment to the network plane: the
// generic demultiplexer, the terminal connection plane it feeds, and
// the small internode connection table.
type NetNode struct {
	K *Kernel
	// Mux is the kernel-resident demultiplexer (GenericKernel mode:
	// the redesign's organization).
	Mux *netmux.Mux
	// Terminals is the front-end processor's connection plane; frame
	// channel numbers are connection ids.
	Terminals *fnp.FNP
	// Inter is the internode connection table: channel 0 carries
	// requests, channel 1 replies.
	Inter *fnp.FNP

	interAttached bool
}

// AttachFNP wires a front-end communications processor to the kernel:
// a generic-kernel mux with a front-end network of `connections`
// terminals, subscribed into a sharded connection plane of the same
// size. shards zero selects the default. The kernel's trace recorder,
// when on, gains the network module names and both planes' events.
func (k *Kernel) AttachFNP(connections, shards int) (*NetNode, error) {
	mux := netmux.New(netmux.GenericKernel, k.Meter)
	if err := mux.Attach(netmux.FrontEnd{Terminals: connections}); err != nil {
		return nil, err
	}
	terms, err := fnp.New(fnp.Config{Connections: connections, Shards: shards, Meter: k.Meter})
	if err != nil {
		return nil, err
	}
	if err := mux.Subscribe("front-end", terms.Subscriber()); err != nil {
		return nil, err
	}
	inter, err := fnp.New(fnp.Config{Connections: interLinks, Shards: 1, Meter: k.Meter})
	if err != nil {
		return nil, err
	}
	n := &NetNode{K: k, Mux: mux, Terminals: terms, Inter: inter}
	if k.Trace != nil {
		k.Trace.Register(netmux.ModuleName, fnp.ModuleName, InternodeModule)
		mux.SetTrace(k.Trace)
		terms.SetTrace(k.Trace)
		inter.SetTrace(k.Trace)
	}
	return n, nil
}

// ensureInternode attaches and subscribes the internode network once.
func (n *NetNode) ensureInternode() error {
	if n.interAttached {
		return nil
	}
	if err := n.Mux.Attach(netmux.Internode{Links: interLinks}); err != nil {
		return err
	}
	if err := n.Mux.Subscribe("internode", n.Inter.Subscriber()); err != nil {
		return err
	}
	n.interAttached = true
	return nil
}

// A Link is a one-way inter-node segment channel: the local node
// issues remote reads and copies, the remote node serves them from
// its own hierarchy behind the remote-segment gate. Connect twice,
// with the nodes swapped, for two-way traffic.
type Link struct {
	local, remote *NetNode
	// server is the remote node's serving process; every request runs
	// with its identity on the remote node's last processor.
	server    *uproc.Process
	serverCPU *hw.Processor

	mu sync.Mutex
}

// Connect wires the inter-node channel between two attached nodes and
// creates the serving process on the remote one.
func Connect(local, remote *NetNode) (*Link, error) {
	if local == nil || remote == nil || local == remote {
		return nil, errors.New("core: a link needs two distinct nodes")
	}
	if err := local.ensureInternode(); err != nil {
		return nil, err
	}
	if err := remote.ensureInternode(); err != nil {
		return nil, err
	}
	server, err := remote.K.CreateProcess(NetPrincipal, aim.Bottom)
	if err != nil {
		return nil, fmt.Errorf("core: creating %s on the remote node: %w", NetPrincipal, err)
	}
	return &Link{
		local:     local,
		remote:    remote,
		server:    server,
		serverCPU: remote.K.CPUs[len(remote.K.CPUs)-1],
	}, nil
}

// encodePath packs a '>'-separated pathname one character per word.
func encodePath(path []string) []hw.Word {
	joined := strings.Join(path, ">")
	out := make([]hw.Word, len(joined))
	for i := 0; i < len(joined); i++ {
		out[i] = hw.Word(joined[i])
	}
	return out
}

// decodePath is encodePath's inverse.
func decodePath(words []hw.Word) []string {
	b := make([]byte, len(words))
	for i, w := range words {
		b[i] = byte(w)
	}
	if len(b) == 0 {
		return nil
	}
	return strings.Split(string(b), ">")
}

// RemoteSegServe is the remote-segment gate: the single entry through
// which a request arriving on the inter-node channel touches the
// local hierarchy. The serving process's principal and label govern
// every access — the pathname walk, the ACL check at initiation, and
// the word references all go through the same gates a local process
// uses. The reply frame carries a status word and the data.
func (k *Kernel) RemoteSegServe(cpu *hw.Processor, p *uproc.Process, req []hw.Word) ([]hw.Word, error) {
	k.Meter.AddBody(bodyRemoteServe, hw.PLI)
	if len(req) < 3 || req[0] != opRead {
		return []hw.Word{opReply, 1}, errors.New("core: malformed remote segment request")
	}
	off, n := int(req[1]), int(req[2])
	path := decodePath(req[3:])
	if n < 0 || n > hw.PageWords*16 {
		return []hw.Word{opReply, 1}, fmt.Errorf("core: remote read of %d words refused", n)
	}
	segno, err := k.OpenPath(cpu, p, path)
	if err != nil {
		return []hw.Word{opReply, 1}, err
	}
	out := make([]hw.Word, 2, 2+n)
	out[0], out[1] = opReply, 0
	for i := 0; i < n; i++ {
		w, err := k.Read(cpu, p, segno, off+i)
		if err != nil {
			return []hw.Word{opReply, 1}, err
		}
		out = append(out, w)
	}
	if k.Trace != nil {
		k.Trace.Emit(trace.Event{
			Kind: trace.EvRemoteSeg, Module: InternodeModule, Cost: bodyRemoteServe,
			Arg0: opRead, Arg1: int64(n), Arg2: chanRequest,
		})
	}
	return out, nil
}

// roundTrip carries one request over the mux to the remote node,
// serves it there, and carries the reply back — every hop through the
// demultiplexer and the internode connection tables, eventcount-
// driven on both ends.
func (l *Link) roundTrip(req []hw.Word) ([]hw.Word, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Request out: demuxed on the remote node, into its internode
	// connection table.
	if err := l.remote.Mux.Deliver(l.serverCPU, "internode", netmux.Frame{Channel: chanRequest, Payload: req}); err != nil {
		return nil, fmt.Errorf("core: internode request: %w", err)
	}
	// The remote serving process drains its request connection with
	// the read-drain-await idiom (the delivery already advanced the
	// eventcount, so the await never blocks here).
	rk := l.remote.K
	ec := l.remote.Inter.DeliveryEC(l.remote.Inter.ShardOf(chanRequest))
	seen := ec.Read()
	d, ok := l.remote.Inter.Next(0)
	if !ok {
		ec.Await(seen)
		d, ok = l.remote.Inter.Next(0)
		if !ok {
			return nil, errors.New("core: internode request lost")
		}
	}
	rk.Attach(l.serverCPU, l.server)
	reply, serr := rk.RemoteSegServe(l.serverCPU, l.server, d.Data)
	l.remote.Inter.Credit(d.Conn)
	// Reply back: demuxed on the local node. The client has no
	// process of its own; the crossing is kernel-internal.
	if err := l.local.Mux.Deliver(nil, "internode", netmux.Frame{Channel: chanReply, Payload: reply}); err != nil {
		return nil, fmt.Errorf("core: internode reply: %w", err)
	}
	rd, ok := l.local.Inter.Next(l.local.Inter.ShardOf(chanReply))
	if !ok {
		return nil, errors.New("core: internode reply lost")
	}
	l.local.Inter.Credit(rd.Conn)
	if serr != nil {
		return nil, fmt.Errorf("core: remote node refused: %w", serr)
	}
	if len(rd.Data) < 2 || rd.Data[0] != opReply || rd.Data[1] != 0 {
		return nil, errors.New("core: malformed internode reply")
	}
	return rd.Data[2:], nil
}

// RemoteRead reads n words starting at off from the file at path on
// the remote node. The remote ACLs apply: the file must be readable
// by the link's serving principal.
func (l *Link) RemoteRead(path []string, off, n int) ([]hw.Word, error) {
	req := append([]hw.Word{opRead, hw.Word(off), hw.Word(n)}, encodePath(path)...)
	data, err := l.roundTrip(req)
	if err != nil {
		return nil, err
	}
	if len(data) != n {
		return nil, fmt.Errorf("core: remote read returned %d words, want %d", len(data), n)
	}
	if l.local.K.Trace != nil {
		l.local.K.Trace.Emit(trace.Event{
			Kind: trace.EvRemoteSeg, Module: InternodeModule,
			Arg0: opRead, Arg1: int64(n), Arg2: chanReply,
		})
	}
	return data, nil
}

// RemoteCopy reads n words at off from the remote file at remotePath
// and writes them into the local segment opened at segno for (cpu,
// p), starting at local offset dstOff. It returns the words moved.
func (l *Link) RemoteCopy(cpu *hw.Processor, p *uproc.Process, remotePath []string, off, n int, segno, dstOff int) (int, error) {
	data, err := l.RemoteRead(remotePath, off, n)
	if err != nil {
		return 0, err
	}
	for i, w := range data {
		if err := l.local.K.Write(cpu, p, segno, dstOff+i, w); err != nil {
			return i, err
		}
	}
	if l.local.K.Trace != nil {
		l.local.K.Trace.Emit(trace.Event{
			Kind: trace.EvRemoteSeg, Module: InternodeModule,
			Arg0: 1, Arg1: int64(len(data)), Arg2: chanReply,
		})
	}
	return len(data), nil
}
