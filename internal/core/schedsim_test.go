package core

// Whole-kernel tests under the deterministic virtual-time executor:
// seeded random interleavings of a multiprocessor storm, and bounded
// systematic sweeps that pin the two races previous PRs fixed — the
// zero-reclaim lost-write window (PR 4) and the quota-growth
// trap-vs-reclaim window (PR 6) — by deliberately scheduling around
// their marked yield points instead of hoping a goroutine storm
// happens to hit them.

import (
	"errors"
	"flag"
	"fmt"
	"strings"
	"testing"

	"multics/internal/aim"
	"multics/internal/disk"
	"multics/internal/hw"
	"multics/internal/quota"
	"multics/internal/schedsim"
	"multics/internal/trace"
	"multics/internal/uproc"
)

// schedSeed seeds the random-interleaving storms. A failing schedule
// prints its seed; rerun with -sched-seed=<seed> to replay it exactly.
var schedSeed = flag.Int64("sched-seed", 1977, "seed for deterministic schedule simulation; a failure prints the seed that reproduces it")

type simWorker struct {
	cpu   *hw.Processor
	p     *uproc.Process
	segno int
}

// simWorkers builds one process per processor, each attached to its
// own CPU with its own root-directory file of pgs pages, materialized
// and then zeroed so every page exists, holds a disk record, and has
// its translation cached in its owner's associative memory.
func simWorkers(t *testing.T, k *Kernel, n, pgs int) []*simWorker {
	t.Helper()
	ws := make([]*simWorker, 0, n)
	for i := 0; i < n; i++ {
		p, err := k.CreateProcess(fmt.Sprintf("sim%d.x", i), aim.Bottom)
		if err != nil {
			t.Fatal(err)
		}
		cpu := k.CPUs[i]
		k.Attach(cpu, p)
		name := fmt.Sprintf("sim%d", i)
		if _, err := k.CreateFile(cpu, p, nil, name, nil, aim.Bottom); err != nil {
			t.Fatal(err)
		}
		segno, err := k.OpenPath(cpu, p, []string{name})
		if err != nil {
			t.Fatal(err)
		}
		for pg := 0; pg < pgs; pg++ {
			if err := k.Write(cpu, p, segno, pg*hw.PageWords, 1); err != nil {
				t.Fatal(err)
			}
			if err := k.Write(cpu, p, segno, pg*hw.PageWords, 0); err != nil {
				t.Fatal(err)
			}
		}
		ws = append(ws, &simWorker{cpu: cpu, p: p, segno: segno})
	}
	return ws
}

// simBalance is accountingBalance without the testing.T, so sweep
// schedules can report imbalance as an error.
func simBalance(k *Kernel) error {
	charged, allocated := 0, 0
	for _, packID := range k.Vols.Packs() {
		pack, err := k.Vols.Pack(packID)
		if err != nil {
			return err
		}
		allocated += pack.UsedRecords()
		pack.EachEntry(func(idx disk.TOCIndex, e disk.TOCEntry) {
			if !e.Quota.Valid {
				return
			}
			cell := quota.CellName{Pack: packID, TOC: idx}
			if k.Cells.Active(cell) {
				if _, used, err := k.Cells.Info(cell); err == nil {
					charged += used
				}
			} else {
				charged += e.Quota.Used
			}
		})
	}
	if charged != allocated {
		return fmt.Errorf("accounting imbalance: %d pages charged, %d records allocated", charged, allocated)
	}
	return nil
}

// runSimStorm drives the oscillation storm of the -race harnesses
// (smp_zero_test.go) as cooperative schedsim tasks: every worker
// writes, verifies, and re-zeroes its own pages, so any interleaving
// that loses a write panics — and the panic carries the seed.
func runSimStorm(k *Kernel, ws []*simWorker, strat schedsim.Strategy, seed int64, rounds, pgs int) (*schedsim.Executor, error) {
	ex := schedsim.New(schedsim.Config{Name: "core-storm", Seed: seed, Strategy: strat})
	for wi, w := range ws {
		wi, w := wi, w
		ex.Go(fmt.Sprintf("cpu%d", w.cpu.ID), func() {
			defer trace.BindCPU(w.cpu.ID)()
			for r := 0; r < rounds; r++ {
				for pg := 0; pg < pgs; pg++ {
					off := pg * hw.PageWords
					v := hw.Word(1 + wi*100 + r)
					if err := k.Write(w.cpu, w.p, w.segno, off, v); err != nil {
						panic(fmt.Sprintf("write seg %d page %d: %v", w.segno, pg, err))
					}
					schedsim.Yield(schedsim.PointYield, "post-write")
					got, err := k.Read(w.cpu, w.p, w.segno, off)
					if err != nil {
						panic(fmt.Sprintf("read seg %d page %d: %v", w.segno, pg, err))
					}
					if got != v {
						panic(fmt.Sprintf("lost write: seg %d page %d read %d, want %d", w.segno, pg, got, v))
					}
					if err := k.Write(w.cpu, w.p, w.segno, off, 0); err != nil {
						panic(fmt.Sprintf("re-zero seg %d page %d: %v", w.segno, pg, err))
					}
				}
			}
		})
	}
	return ex, ex.Run()
}

// TestSimStormRandomInterleavings runs the storm under several seeded
// random schedules. Each run is a pure function of its seed: a failure
// names the seed, and -sched-seed replays it.
func TestSimStormRandomInterleavings(t *testing.T) {
	for i := int64(0); i < 4; i++ {
		seed := *schedSeed + i
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			k := boot(t, func(c *Config) {
				c.Processors = 2
				c.MemFrames = 24
				c.WiredFrames = 8
				c.RootQuota = 4096
			})
			ws := simWorkers(t, k, 2, 8)
			if _, err := runSimStorm(k, ws, schedsim.Random(seed), seed, 3, 8); err != nil {
				t.Fatal(err)
			}
			if st := k.Frames.Stats(); st.Evictions == 0 {
				t.Error("storm produced no evictions: no memory pressure, nothing exercised")
			}
			if err := simBalance(k); err != nil {
				t.Error(err)
			}
			if leaks := k.Frames.Audit(); len(leaks) != 0 {
				t.Errorf("frame audit: %v", leaks)
			}
			if leaks := k.Segs.Audit(); len(leaks) != 0 {
				t.Errorf("segment audit: %v", leaks)
			}
		})
	}
}

// TestSimStormIdenticalSeedsIdenticalSchedules is the replay property
// at whole-kernel scale: the same seed over the same workload takes
// the same scheduling decisions, step for step.
func TestSimStormIdenticalSeedsIdenticalSchedules(t *testing.T) {
	run := func() []schedsim.Decision {
		k := boot(t, func(c *Config) {
			c.Processors = 2
			c.MemFrames = 24
			c.WiredFrames = 8
			c.RootQuota = 4096
		})
		ws := simWorkers(t, k, 2, 8)
		ex, err := runSimStorm(k, ws, schedsim.Random(*schedSeed), *schedSeed, 2, 8)
		if err != nil {
			t.Fatal(err)
		}
		return ex.Decisions()
	}
	d1, d2 := run(), run()
	if len(d1) != len(d2) {
		t.Fatalf("schedule lengths differ: %d vs %d decisions", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i].String() != d2[i].String() {
			t.Fatalf("schedules diverge at step %d:\n%v\n%v", i, d1[i], d2[i])
		}
	}
}

// sweepStorm is the two-task harness both window sweeps schedule
// around. The evictor registers first, so the sticky baseline runs it
// to completion while the toucher sits parked — runnable — at its
// start; every zero-reclaim of the toucher's pages is then a marked
// decision with a real alternative, and a single forced deviation
// drops the toucher into the middle of the reclaim with its stale
// cached translations intact.
func sweepStorm(strat schedsim.Strategy, pgs int) (*schedsim.Executor, *Kernel, error) {
	cfg := DefaultConfig()
	cfg.Processors = 2
	cfg.MemFrames = 32
	cfg.WiredFrames = 8
	cfg.RootQuota = 4096
	k, err := Boot(cfg)
	if err != nil {
		return nil, nil, err
	}
	type worker struct {
		cpu   *hw.Processor
		p     *uproc.Process
		segno int
	}
	mk := func(i int, pages int) (*worker, error) {
		p, err := k.CreateProcess(fmt.Sprintf("sw%d.x", i), aim.Bottom)
		if err != nil {
			return nil, err
		}
		cpu := k.CPUs[i]
		k.Attach(cpu, p)
		name := fmt.Sprintf("sw%d", i)
		if _, err := k.CreateFile(cpu, p, nil, name, nil, aim.Bottom); err != nil {
			return nil, err
		}
		segno, err := k.OpenPath(cpu, p, []string{name})
		if err != nil {
			return nil, err
		}
		// Materialize and re-zero: every page exists, holds a record,
		// reads zero, and has its translation cached in its owner's
		// associative memory — the precondition of both windows.
		for pg := 0; pg < pages; pg++ {
			if err := k.Write(cpu, p, segno, pg*hw.PageWords, 1); err != nil {
				return nil, err
			}
			if err := k.Write(cpu, p, segno, pg*hw.PageWords, 0); err != nil {
				return nil, err
			}
		}
		return &worker{cpu: cpu, p: p, segno: segno}, nil
	}
	toucher, err := mk(0, pgs)
	if err != nil {
		return nil, nil, err
	}
	evictor, err := mk(1, 0)
	if err != nil {
		return nil, nil, err
	}

	const evictPages = 24
	ex := schedsim.New(schedsim.Config{Name: "sweep-storm", Strategy: strat})
	ex.Go("evictor", func() {
		defer trace.BindCPU(evictor.cpu.ID)()
		for pg := 0; pg < evictPages; pg++ {
			if err := k.Write(evictor.cpu, evictor.p, evictor.segno, pg*hw.PageWords, hw.Word(1000+pg)); err != nil {
				panic(fmt.Sprintf("evictor write page %d: %v", pg, err))
			}
		}
	})
	ex.Go("toucher", func() {
		defer trace.BindCPU(toucher.cpu.ID)()
		for pg := 0; pg < pgs; pg++ {
			off := pg * hw.PageWords
			if err := k.Write(toucher.cpu, toucher.p, toucher.segno, off, 10); err != nil {
				panic(fmt.Sprintf("toucher write page %d: %v", pg, err))
			}
			schedsim.Yield(schedsim.PointYield, "post-write")
			got, err := k.Read(toucher.cpu, toucher.p, toucher.segno, off)
			if err != nil {
				panic(fmt.Sprintf("toucher read page %d: %v", pg, err))
			}
			if got != 10 {
				panic(fmt.Sprintf("toucher lost write: page %d read %d, want 10", pg, got))
			}
		}
	})
	if err := ex.Run(); err != nil {
		return ex, k, err
	}
	// Durability: the toucher's values must survive whatever
	// evictions the schedule produced.
	for pg := 0; pg < pgs; pg++ {
		got, err := k.Read(toucher.cpu, toucher.p, toucher.segno, pg*hw.PageWords)
		if err != nil {
			return ex, k, fmt.Errorf("post-run read page %d: %w", pg, err)
		}
		if got != 10 {
			return ex, k, fmt.Errorf("post-run page %d reads %d, want 10: write lost to reclaim", pg, got)
		}
	}
	if err := simBalance(k); err != nil {
		return ex, k, err
	}
	return ex, k, nil
}

// starved reports a schedule that ran a reference's whole retry budget
// out. An adversarial schedule may legitimately park the reclaiming
// task forever while the faulter retries — that is scheduler
// starvation, not a kernel bug — so sweeps tolerate these schedules
// (their counters still record how far they got) rather than failing.
func starved(err error) bool {
	return err != nil && strings.Contains(err.Error(), "retry budget exhausted")
}

// TestSweepZeroReclaimWindow systematically explores preemptions
// around the marked PR-4 window — the gap between the zero scan and
// the shootdown broadcast in writeBackBatch. Every completed schedule
// must preserve the toucher's writes and the storage accounting, and
// at least one completed schedule must actually land a store in the
// window (ZeroRescues fires), proving the sweep exercised the race
// rather than passing vacuously.
func TestSweepZeroReclaimWindow(t *testing.T) {
	var rescues, zeroEvictions int64
	completed, completedWithRescue := 0, 0
	maxSched, maxPre := schedsim.EnvBudget(48, 2)
	rep, err := schedsim.Sweep(schedsim.SweepConfig{
		MaxSchedules:   maxSched,
		MaxPreemptions: maxPre,
		Window: func(d schedsim.Decision) bool {
			return d.Point == schedsim.PointMark && d.Detail == "zero-reclaim"
		},
	}, func(strat schedsim.Strategy) (*schedsim.Executor, error) {
		ex, k, err := sweepStorm(strat, 3)
		var runRescues int64
		if k != nil {
			st := k.Frames.Stats()
			runRescues = st.ZeroRescues
			rescues += runRescues
			zeroEvictions += st.ZeroEvictions
		}
		if starved(err) {
			return ex, nil
		}
		if err == nil {
			completed++
			if runRescues > 0 {
				completedWithRescue++
			}
		}
		return ex, err
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WindowDecisions == 0 || zeroEvictions == 0 {
		t.Fatalf("sweep vacuous: no zero-reclaim decisions opened (%d schedules, %d in-window, %d zero evictions)",
			rep.Schedules, rep.WindowDecisions, zeroEvictions)
	}
	if completed == 0 {
		t.Fatal("every schedule was starved: the sweep verified nothing")
	}
	if completedWithRescue == 0 {
		t.Fatalf("no completed schedule landed a store in the zero-reclaim window (%d schedules, %d in-window, %d rescues total): the PR-4 race was not exercised",
			rep.Schedules, rep.WindowDecisions, rescues)
	}
	t.Logf("%d schedules (%d completed, %d with a rescue), %d in-window decisions, %d zero evictions, %d rescues, truncated=%v",
		rep.Schedules, completed, completedWithRescue, rep.WindowDecisions, zeroEvictions, rescues, rep.Truncated)
}

// TestSweepQuotaGrowthWindow explores the PR-6 trap-vs-reclaim window:
// after the reclaim frees a zero page's record but before the file map
// records it, a refault sees the quota trap while the map still names
// a stored record — segment.Grow must refuse with ErrGrowRace and the
// reference must retry to a correct result. The sweep deviates both at
// the reclaim mark (to drop the toucher into the window) and at the
// grow-race-retry mark (to hand the token back so the reclaim
// completes and the retry resolves). GrowRaces in a completed schedule
// proves the window was entered and survived.
func TestSweepQuotaGrowthWindow(t *testing.T) {
	var races int64
	completed, completedWithRace := 0, 0
	maxSched, maxPre := schedsim.EnvBudget(48, 2)
	rep, err := schedsim.Sweep(schedsim.SweepConfig{
		MaxSchedules:   maxSched,
		MaxPreemptions: maxPre,
		Window: func(d schedsim.Decision) bool {
			return d.Point == schedsim.PointMark
		},
	}, func(strat schedsim.Strategy) (*schedsim.Executor, error) {
		ex, k, err := sweepStorm(strat, 3)
		var runRaces int64
		if k != nil {
			runRaces = k.Cells.Stats().GrowRaces
			races += runRaces
		}
		if starved(err) {
			return ex, nil
		}
		if err == nil {
			completed++
			if runRaces > 0 {
				completedWithRace++
			}
		}
		return ex, err
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WindowDecisions == 0 {
		t.Fatal("sweep vacuous: no marked decisions in any schedule")
	}
	if races == 0 {
		t.Fatalf("no schedule entered the quota-growth race window (%d schedules, %d in-window decisions): the PR-6 race was not exercised",
			rep.Schedules, rep.WindowDecisions)
	}
	if completed == 0 {
		t.Fatal("every schedule was starved: the sweep verified nothing")
	}
	if completedWithRace == 0 {
		t.Fatalf("the grow race fired only in starved schedules (%d schedules, %d races): no schedule shows the retry resolving correctly",
			rep.Schedules, races)
	}
	t.Logf("%d schedules (%d completed, %d with a race), %d in-window decisions, %d grow races, truncated=%v",
		rep.Schedules, completed, completedWithRace, rep.WindowDecisions, races, rep.Truncated)
}

// TestSimExecutorQuantumLoop runs the scheduler's quantum loop under
// both executors over the same machine shape and checks they agree on
// the work done; the deterministic one must also replay identically.
func TestSimExecutorQuantumLoop(t *testing.T) {
	run := func(ex uproc.Executor) (int, error) {
		k := boot(t, func(c *Config) { c.Processors = 2 })
		for i := 0; i < 4; i++ {
			if _, err := k.CreateProcess(fmt.Sprintf("q%d.x", i), aim.Bottom); err != nil {
				t.Fatal(err)
			}
		}
		dispatched := 0
		total, err := k.Procs.RunQuantumWith(ex, k.CPUs, 10, func(cpu *hw.Processor, p *uproc.Process) {
			dispatched++
		})
		if total != dispatched {
			t.Errorf("executor %s: %d quanta reported, %d bodies run", ex.Name(), total, dispatched)
		}
		return total, err
	}
	goTotal, err := run(uproc.GoroutineExecutor{})
	if err != nil {
		t.Fatal(err)
	}
	simTotal, err := run(uproc.SimExecutor{Seed: *schedSeed})
	if err != nil {
		t.Fatal(err)
	}
	if goTotal != simTotal {
		t.Errorf("executors disagree on quanta: goroutines ran %d, schedsim ran %d", goTotal, simTotal)
	}
	again, err := run(uproc.SimExecutor{Seed: *schedSeed})
	if err != nil {
		t.Fatal(err)
	}
	if again != simTotal {
		t.Errorf("same seed, different quanta: %d then %d", simTotal, again)
	}
}

// TestRetryBudgetObservability freezes the trap-vs-reclaim window in
// its inconsistent intermediate state — quota trap raised while the
// file map still names a stored record — so the reference's fault
// service can never make progress. The retry budget must then become
// visible twice: the half-budget trace event and counter while the
// run is still diagnosable, and the distinct wrapped error at
// exhaustion.
func TestRetryBudgetObservability(t *testing.T) {
	k := boot(t, func(c *Config) {
		c.AssocOff = true // every reference walks the tables and sees the trap
		c.TraceEvents = 1 << 12
	})
	cpu, p := user(t, k, "loop.x", aim.Bottom)
	if _, err := k.CreateFile(cpu, p, nil, "f", nil, aim.Bottom); err != nil {
		t.Fatal(err)
	}
	segno, err := k.OpenPath(cpu, p, []string{"f"})
	if err != nil {
		t.Fatal(err)
	}
	// Materialize page 0: Grow charges quota, allocates its record,
	// and marks the map stored.
	if err := k.Write(cpu, p, segno, 0, 7); err != nil {
		t.Fatal(err)
	}
	sdw, err := p.DT().Get(segno)
	if err != nil {
		t.Fatal(err)
	}
	// Freeze the window: not-present plus quota trap, map unchanged.
	if _, err := sdw.Table.Update(0, func(d *hw.PTW) {
		d.Present = false
		d.Frame = 0
		d.QuotaTrap = true
	}); err != nil {
		t.Fatal(err)
	}

	_, err = k.Read(cpu, p, segno, 0)
	if !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("got %v, want ErrRetryBudget", err)
	}
	if !errors.Is(err, ErrFaultLoop) {
		t.Errorf("ErrRetryBudget must wrap ErrFaultLoop for existing callers; got %v", err)
	}
	half, exhausted := k.RetryStats()
	if half != 1 || exhausted != 1 {
		t.Errorf("RetryStats = (%d, %d), want (1, 1)", half, exhausted)
	}
	if races := k.Cells.Stats().GrowRaces; races == 0 {
		t.Error("every retry lost the grow race, but GrowRaces = 0: the counter is not wired to the ErrGrowRace site")
	}
	found := false
	for _, e := range k.Trace.Events() {
		if e.Kind == trace.EvRetryPressure {
			found = true
			if e.Arg2 != 128 {
				t.Errorf("retry-pressure event at try %d, want 128 (half of the budget)", e.Arg2)
			}
		}
	}
	if !found {
		t.Error("no retry-pressure event in the trace: the half-budget warning is not emitted")
	}
}
