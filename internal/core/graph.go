package core

import (
	"multics/internal/coreseg"
	"multics/internal/deps"
	"multics/internal/directory"
	"multics/internal/disk"
	"multics/internal/knownseg"
	"multics/internal/pageframe"
	"multics/internal/quota"
	"multics/internal/salvage"
	"multics/internal/segment"
	"multics/internal/uproc"
	"multics/internal/vproc"
)

// Module names of the Kernel/Multics design (Figure 4 of the paper).
// Every manager owns its name: its trace events and its ranked locks
// must carry the same string the dependency graph uses, so the lock
// ranks installed from the graph's layers reach the right mutexes.
const (
	ModCoreSeg  = coreseg.ModuleName
	ModVProc    = vproc.ModuleName
	ModDisk     = disk.ModuleName
	ModFrame    = pageframe.ModuleName
	ModQuota    = quota.ModuleName
	ModSegment  = segment.ModuleName
	ModKnownSeg = knownseg.ModuleName
	ModDir      = directory.ModuleName
	ModUProc    = uproc.ModuleName
	ModSalvage  = salvage.ModuleName
)

// BuildGraph constructs the dependency structure of the redesigned
// kernel: every module is an object manager, every dependency is one
// of the five disciplined kinds, and the result is loop-free. Boot
// verifies this graph; cmd/depgraph renders it as Figure 4.
func BuildGraph() *deps.Graph {
	g := deps.New()
	g.AddModule(ModCoreSeg, "fixed core segments allocated at initialization; read and write only")
	g.AddModule(ModVProc, "fixed virtual processors with states in core segments")
	g.AddModule(ModDisk, "disk packs, records and tables of contents")
	g.AddModule(ModFrame, "multiplexes pageable page frames; services page faults")
	g.AddModule(ModQuota, "explicit quota cell objects cached in a core-segment table")
	g.AddModule(ModSegment, "active segment table; activation, growth, relocation")
	g.AddModule(ModKnownSeg, "per-process segment number bindings; quota exception entry")
	g.AddModule(ModDir, "naming hierarchy, ACLs, labels, quota designation")
	g.AddModule(ModUProc, "arbitrary user processes multiplexed onto virtual processors")
	g.AddModule(ModSalvage, "boot-time repair of tables of contents, free lists and quota cells")

	// The two blanket rules the paper states for Figure 4: every
	// module except the core segment manager depends on the virtual
	// processor manager (interpreter) and on the core segment
	// manager (address space).
	for _, mod := range []string{ModDisk, ModFrame, ModQuota, ModSegment, ModKnownSeg, ModDir, ModUProc, ModSalvage} {
		g.MustDepend(mod, ModVProc, deps.Interpreter, "executes on a virtual processor")
		g.MustDepend(mod, ModCoreSeg, deps.AddressSpace, "system address space defined by a core-segment translation table")
	}
	g.MustDepend(ModVProc, ModCoreSeg, deps.Map, "virtual processor states live in a core segment")
	g.MustDepend(ModVProc, ModCoreSeg, deps.AddressSpace, "runs in the wired system address space")

	g.MustDepend(ModFrame, ModDisk, deps.Component, "page contents live in disk records")
	g.MustDepend(ModFrame, ModCoreSeg, deps.Map, "frame tables live in core segments")

	g.MustDepend(ModQuota, ModDisk, deps.Component, "quota cells are stored in table-of-contents entries")
	g.MustDepend(ModQuota, ModCoreSeg, deps.Map, "active cells are cached in a core-segment table")

	g.MustDepend(ModSegment, ModFrame, deps.Component, "segments are arrays of pages")
	g.MustDepend(ModSegment, ModQuota, deps.Component, "growth checks the statically bound quota cell")
	g.MustDepend(ModSegment, ModDisk, deps.Map, "file maps live in tables of contents")
	g.MustDepend(ModSegment, ModCoreSeg, deps.Map, "the active segment table lives in a core segment")

	g.MustDepend(ModKnownSeg, ModSegment, deps.Component, "known segments bind segment numbers to segments")
	g.MustDepend(ModKnownSeg, ModCoreSeg, deps.Map, "known segment tables live in wired storage")

	g.MustDepend(ModDir, ModSegment, deps.Component, "directory representations are stored in segments")
	g.MustDepend(ModDir, ModKnownSeg, deps.Component, "initiation hands bindings to known segment tables")
	g.MustDepend(ModDir, ModQuota, deps.Component, "quota designation creates and removes cells")

	g.MustDepend(ModUProc, ModVProc, deps.Interpreter, "user processes are multiplexed onto virtual processors")
	g.MustDepend(ModUProc, ModSegment, deps.Component, "user process states are stored in segments")
	g.MustDepend(ModUProc, ModKnownSeg, deps.Component, "each process carries a known segment table")
	g.MustDepend(ModUProc, ModCoreSeg, deps.Map, "the real-memory message queue lives in a core segment")

	g.MustDepend(ModSalvage, ModDisk, deps.Component, "salvage reads and repairs tables of contents and free lists")

	return g
}
