package core

// Failure injection: the kernel must degrade into clean errors, never
// corruption or panics, when the environment fails under it.

import (
	"errors"
	"testing"

	"multics/internal/aim"
	"multics/internal/directory"
	"multics/internal/hw"
	"multics/internal/knownseg"
	"multics/internal/segment"
	"multics/internal/uproc"
)

func TestFailureDemountedPackUnderActiveSegment(t *testing.T) {
	k := boot(t, nil)
	cpu, p := user(t, k, "a.x", aim.Bottom)
	// Place a file on the second pack by filling... simpler: create
	// it normally (first pack) and demount that pack.
	if _, err := k.CreateFile(cpu, p, nil, "f", nil, aim.Bottom); err != nil {
		t.Fatal(err)
	}
	segno, err := k.OpenPath(cpu, p, []string{"f"})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Write(cpu, p, segno, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Vols.Demount("dska"); err != nil {
		t.Fatal(err)
	}
	// A resident page still reads (it is in core)...
	if _, err := k.Read(cpu, p, segno, 0); err != nil {
		t.Errorf("read of resident page after demount: %v", err)
	}
	// ...but growth and anything needing the pack fails cleanly.
	err = k.Write(cpu, p, segno, 5*hw.PageWords, 1)
	if err == nil {
		t.Error("growth on a demounted pack succeeded")
	}
	if _, ok := err.(*hw.Fault); ok {
		t.Errorf("demount surfaced as a hardware fault: %v", err)
	}
	// The system as a whole still runs: a second process works on
	// the other pack? (root is on dska, so directory ops fail —
	// but they fail as errors.)
	if _, err := k.CreateFile(cpu, p, nil, "g", nil, aim.Bottom); err == nil {
		t.Error("create on demounted root pack succeeded")
	}
}

func TestFailureASTExhaustion(t *testing.T) {
	k := boot(t, nil)
	cpu, p := user(t, k, "a.x", aim.Bottom)
	capacity := k.Segs.Capacity()
	// Fill the AST: directories stay active, so create enough of
	// them. Leave the already-active count in place.
	made := 0
	var lastErr error
	for i := 0; k.Segs.ActiveCount() < capacity; i++ {
		_, lastErr = k.CreateDir(cpu, p, nil, namegen(i), directory.Public(hw.Read|hw.Write), aim.Bottom)
		if lastErr != nil {
			break
		}
		made++
	}
	if lastErr == nil {
		// AST now full: the next activation must fail with the
		// typed error, reaching the user as an error, not a hang.
		_, err := k.CreateDir(cpu, p, nil, "straw", directory.Public(hw.Read|hw.Write), aim.Bottom)
		lastErr = err
	}
	if !errors.Is(lastErr, segment.ErrASTFull) {
		t.Fatalf("AST exhaustion surfaced as %v, want ErrASTFull", lastErr)
	}
	// Recovery: deactivate one directory segment and retry.
	// (Directory segments stay active by design; use a file
	// instead — create fails at the dir segment activation, so
	// free a slot by deactivating a file segment.)
	if _, err := k.Dirs.List("a.x", aim.Bottom, k.Dirs.RootID()); err != nil {
		t.Errorf("system unhealthy after AST exhaustion: %v", err)
	}
	_ = made
}

func namegen(i int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	return string([]byte{letters[i%26], letters[(i/26)%26], letters[(i/676)%26]})
}

func TestFailureKSTExhaustion(t *testing.T) {
	k := boot(t, nil)
	cpu, p := user(t, k, "a.x", aim.Bottom)
	// Fill the process's KST.
	var lastErr error
	for i := 0; lastErr == nil; i++ {
		name := "k" + namegen(i)
		if _, lastErr = k.CreateFile(cpu, p, nil, name, nil, aim.Bottom); lastErr != nil {
			break
		}
		_, lastErr = k.OpenPath(cpu, p, []string{name})
	}
	if !errors.Is(lastErr, knownseg.ErrKSTFull) && !errors.Is(lastErr, segment.ErrASTFull) {
		t.Fatalf("KST exhaustion surfaced as %v", lastErr)
	}
	// A second process is unaffected.
	p2, err := k.CreateProcess("b.y", aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	cpu2 := k.CPUs[1]
	k.Attach(cpu2, p2)
	if _, err := k.CreateFile(cpu2, p2, nil, "mine", nil, aim.Bottom); err != nil {
		t.Fatalf("second process cannot create: %v", err)
	}
	if _, err := k.OpenPath(cpu2, p2, []string{"mine"}); err != nil {
		t.Errorf("second process cannot open: %v", err)
	}
}

func TestFailureMessageQueueOverflow(t *testing.T) {
	k := boot(t, nil)
	// Fill the real-memory queue without draining.
	var err error
	n := 0
	for ; err == nil && n <= k.Queue.Cap()+1; n++ {
		err = k.Procs.Wakeup(1, 0)
	}
	if !errors.Is(err, uproc.ErrQueueFull) {
		t.Fatalf("overflow surfaced as %v", err)
	}
	// Draining recovers it.
	if _, err := k.Procs.DeliverEvents(); err != nil {
		t.Fatal(err)
	}
	if err := k.Procs.Wakeup(1, 0); err != nil {
		t.Errorf("queue unusable after drain: %v", err)
	}
}

func TestFailureQuotaExhaustionIsRecoverable(t *testing.T) {
	k := boot(t, nil)
	cpu, p := user(t, k, "a.x", aim.Bottom)
	dirID, err := k.CreateDir(cpu, p, nil, "jail", directory.Public(hw.Read|hw.Write), aim.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.DesignateQuota(cpu, p, dirID, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := k.CreateFile(cpu, p, []string{"jail"}, "f", nil, aim.Bottom); err != nil {
		t.Fatal(err)
	}
	segno, err := k.OpenPath(cpu, p, []string{"jail", "f"})
	if err != nil {
		t.Fatal(err)
	}
	var werr error
	pages := 0
	for ; werr == nil && pages < 10; pages++ {
		werr = k.Write(cpu, p, segno, pages*hw.PageWords, 1)
	}
	if werr == nil {
		t.Fatal("quota never enforced")
	}
	// Raising the limit un-wedges the process mid-flight.
	e, err := p.KST().Entry(segno)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Cells.SetLimit(e.Cell, 100); err != nil {
		t.Fatal(err)
	}
	if err := k.Write(cpu, p, segno, 9*hw.PageWords, 1); err != nil {
		t.Errorf("write after limit raise: %v", err)
	}
	// Already-written data is intact.
	if w, err := k.Read(cpu, p, segno, 0); err != nil || w != 1 {
		t.Errorf("data after quota storm = %d, %v", w, err)
	}
}

func TestFailureBothPacksFull(t *testing.T) {
	// Growth when no pack anywhere has space: the relocation path
	// itself fails, and the error must be a clean quota/disk error.
	k := boot(t, func(c *Config) {
		c.Packs = []PackSpec{{ID: "p0", Records: 6}, {ID: "p1", Records: 6}}
		c.RootQuota = 100
	})
	cpu, p := user(t, k, "a.x", aim.Bottom)
	if _, err := k.CreateFile(cpu, p, nil, "f", nil, aim.Bottom); err != nil {
		t.Fatal(err)
	}
	segno, err := k.OpenPath(cpu, p, []string{"f"})
	if err != nil {
		t.Fatal(err)
	}
	var werr error
	written := 0
	for i := 0; i < 20 && werr == nil; i++ {
		werr = k.Write(cpu, p, segno, i*hw.PageWords, hw.Word(i+1))
		if werr == nil {
			written++
		}
	}
	if werr == nil {
		t.Fatal("writes never failed with 12 records total")
	}
	if _, ok := werr.(*hw.Fault); ok {
		t.Errorf("exhaustion surfaced as a hardware fault: %v", werr)
	}
	// Everything already written is still readable.
	for i := 0; i < written; i++ {
		w, err := k.Read(cpu, p, segno, i*hw.PageWords)
		if err != nil || w != hw.Word(i+1) {
			t.Fatalf("page %d after exhaustion = %d, %v", i, w, err)
		}
	}
}
