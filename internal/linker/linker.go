// Package linker implements the Multics dynamic linker in its two
// configurations: the pre-1974 kernel-resident linker, and the linker
// extracted to the user ring by Janson's project — the first of the
// removal experiments the paper reports.
//
// A program's external references are symbolic until first use; the
// first reference takes a link fault and the linker "snaps" the link:
// it resolves the symbol through the file system and patches the
// linkage section so later references go straight through.
//
// Removing the linker from ring zero cut 5% of the supervisor's
// object code, 2.5% of its internal entry points, and 11% of the
// gates callable from the user domain (the linker was doing a user
// function inside the kernel). The paper notes the extracted linker
// ran somewhat slower — the user-ring linker must make separate gate
// calls back into the kernel for the searches the in-kernel version
// made as local calls — with the causes understood and curable. The
// cost model reproduces that shape.
package linker

import (
	"errors"
	"fmt"
	"sync"

	"multics/internal/hw"
)

// Mode selects where the linker lives.
type Mode int

const (
	// InKernel is the pre-redesign configuration: the linker runs
	// in ring zero inside the fault handler.
	InKernel Mode = iota
	// UserRing is Janson's configuration: the fault is reflected to
	// the user ring, and the linker there calls kernel gates for
	// resolution.
	UserRing
)

func (m Mode) String() string {
	if m == InKernel {
		return "in-kernel"
	}
	return "user-ring"
}

// Algorithm-body costs (assembly-cycle units, PL/I coded). The
// resolution work itself (directory search, initiate) is charged by
// the resolver callback; these are the linker's own bodies.
const (
	// bodySnapKernel is the in-kernel linker's snap path: somewhat
	// heavier than plain user code because it validates arguments
	// against protected data structures.
	bodySnapKernel = 140
	// bodySnapUser is the extracted linker's snap path: ordinary
	// user code, lighter per line...
	bodySnapUser = 120
	// ...but each snap makes separate kernel gate calls the
	// in-kernel version performed as local transfers (search,
	// initiate, combine), each a ring round trip. This is why the
	// extracted linker ran somewhat slower — understood and curable.
	userRingGateCalls = 3
)

// A Target is a snapped link: segment number and word offset.
type Target struct {
	Segno  int
	Offset int
}

// A Resolver turns a symbolic reference into a target, performing the
// directory search and initiation. Its own costs are charged by the
// callee.
type Resolver func(symbol string) (Target, error)

// ErrUnresolved reports a symbol the resolver could not bind.
var ErrUnresolved = errors.New("linker: unresolved symbol")

type link struct {
	snapped bool
	target  Target
}

// A Linkage is one process's linkage section: the per-process table
// of external references.
type Linkage struct {
	mu    sync.Mutex
	links map[string]*link
}

// NewLinkage returns an empty linkage section.
func NewLinkage() *Linkage {
	return &Linkage{links: make(map[string]*link)}
}

// Snapped reports how many links have been snapped.
func (lk *Linkage) Snapped() int {
	lk.mu.Lock()
	defer lk.mu.Unlock()
	n := 0
	for _, l := range lk.links {
		if l.snapped {
			n++
		}
	}
	return n
}

// A Linker snaps links in one of the two configurations.
type Linker struct {
	Mode    Mode
	Meter   *hw.CostMeter
	Resolve Resolver

	mu     sync.Mutex
	faults int64
}

// New returns a linker in the given configuration.
func New(mode Mode, meter *hw.CostMeter, resolve Resolver) *Linker {
	return &Linker{Mode: mode, Meter: meter, Resolve: resolve}
}

// Faults reports the number of link faults taken.
func (l *Linker) Faults() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.faults
}

// Reference follows one external reference for the process owning lk,
// snapping the link on first use. cpu (which may be nil) carries the
// ring-crossing accounting.
func (l *Linker) Reference(cpu *hw.Processor, lk *Linkage, symbol string) (Target, error) {
	lk.mu.Lock()
	ln := lk.links[symbol]
	if ln == nil {
		ln = &link{}
		lk.links[symbol] = ln
	}
	if ln.snapped {
		t := ln.target
		lk.mu.Unlock()
		l.Meter.Add(hw.CycMemRef) // indirect through the snapped link
		return t, nil
	}
	lk.mu.Unlock()

	// Link fault.
	l.Meter.Add(hw.CycFault)
	l.mu.Lock()
	l.faults++
	l.mu.Unlock()

	var target Target
	var err error
	switch l.Mode {
	case InKernel:
		// One entry into ring zero covers the whole snap; the
		// resolution happens as local calls inside the kernel.
		err = l.gate(cpu, func() error {
			l.Meter.AddBody(bodySnapKernel, hw.PLI)
			var rerr error
			target, rerr = l.Resolve(symbol)
			return rerr
		})
	case UserRing:
		// The fault is reflected back to the user ring; the
		// user-ring linker body runs there and makes separate
		// gate calls for the kernel's part of the work.
		l.Meter.AddBody(bodySnapUser, hw.PLI)
		for i := 0; i < userRingGateCalls-1; i++ {
			// Extra kernel round trips beyond the single one the
			// resolver itself performs.
			gerr := l.gate(cpu, func() error { return nil })
			if gerr != nil {
				return Target{}, gerr
			}
		}
		err = l.gate(cpu, func() error {
			var rerr error
			target, rerr = l.Resolve(symbol)
			return rerr
		})
	default:
		return Target{}, fmt.Errorf("linker: unknown mode %d", l.Mode)
	}
	if err != nil {
		return Target{}, err
	}
	lk.mu.Lock()
	ln.snapped = true
	ln.target = target
	lk.mu.Unlock()
	return target, nil
}

func (l *Linker) gate(cpu *hw.Processor, fn func() error) error {
	if cpu == nil {
		return fn()
	}
	return cpu.GateCall(hw.KernelRing, true, fn)
}

// KernelLines reports the source lines the configuration keeps inside
// the security kernel (Janson 1974: the whole 2,000-line linker was
// doing a user function).
func KernelLines(mode Mode) int {
	if mode == InKernel {
		return 2000
	}
	return 0
}
