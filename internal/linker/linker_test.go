package linker

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"multics/internal/hw"
)

// stubResolver resolves symbols to deterministic targets, charging a
// fixed resolution cost like the real directory machinery would.
func stubResolver(meter *hw.CostMeter, fail map[string]bool) Resolver {
	next := 100
	targets := map[string]Target{}
	var mu sync.Mutex
	return func(symbol string) (Target, error) {
		meter.Add(300) // directory search + initiate
		mu.Lock()
		defer mu.Unlock()
		if fail[symbol] {
			return Target{}, fmt.Errorf("%w: %s", ErrUnresolved, symbol)
		}
		t, ok := targets[symbol]
		if !ok {
			t = Target{Segno: next, Offset: len(symbol)}
			targets[symbol] = t
			next++
		}
		return t, nil
	}
}

func newCPU(meter *hw.CostMeter) *hw.Processor {
	cpu := hw.NewProcessor(0, hw.NewMemory(1), meter)
	cpu.Ring = hw.UserRing
	return cpu
}

func TestSnapOnceThenCached(t *testing.T) {
	meter := &hw.CostMeter{}
	l := New(InKernel, meter, stubResolver(meter, nil))
	lk := NewLinkage()
	cpu := newCPU(meter)

	t1, err := l.Reference(cpu, lk, "sqrt_")
	if err != nil {
		t.Fatal(err)
	}
	if lk.Snapped() != 1 || l.Faults() != 1 {
		t.Errorf("snapped=%d faults=%d", lk.Snapped(), l.Faults())
	}
	afterSnap := meter.Snapshot()
	t2, err := l.Reference(cpu, lk, "sqrt_")
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Errorf("snapped target changed: %v vs %v", t1, t2)
	}
	if l.Faults() != 1 {
		t.Error("second reference faulted")
	}
	if got := meter.Since(afterSnap); got > 5 {
		t.Errorf("snapped reference cost %d cycles; should be an indirect word", got)
	}
}

func TestDistinctSymbolsDistinctTargets(t *testing.T) {
	meter := &hw.CostMeter{}
	l := New(InKernel, meter, stubResolver(meter, nil))
	lk := NewLinkage()
	a, err := l.Reference(nil, lk, "alpha_")
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Reference(nil, lk, "beta_")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("two symbols snapped to one target")
	}
	if lk.Snapped() != 2 {
		t.Errorf("Snapped = %d", lk.Snapped())
	}
}

func TestUnresolvedSymbolStaysUnsnapped(t *testing.T) {
	meter := &hw.CostMeter{}
	l := New(InKernel, meter, stubResolver(meter, map[string]bool{"ghost_": true}))
	lk := NewLinkage()
	if _, err := l.Reference(nil, lk, "ghost_"); !errors.Is(err, ErrUnresolved) {
		t.Fatalf("unresolved reference = %v", err)
	}
	if lk.Snapped() != 0 {
		t.Error("failed snap recorded as snapped")
	}
	// Each retry faults again.
	if _, err := l.Reference(nil, lk, "ghost_"); err == nil {
		t.Error("retry succeeded")
	}
	if l.Faults() != 2 {
		t.Errorf("Faults = %d", l.Faults())
	}
}

func TestUserRingLinkerIsSomewhatSlower(t *testing.T) {
	// P1's shape: the extracted linker runs slower per snap, the
	// causes (extra gate round trips) understood.
	run := func(mode Mode) int64 {
		meter := &hw.CostMeter{}
		l := New(mode, meter, stubResolver(meter, nil))
		lk := NewLinkage()
		cpu := newCPU(meter)
		for i := 0; i < 50; i++ {
			if _, err := l.Reference(cpu, lk, fmt.Sprintf("sym%d_", i)); err != nil {
				t.Fatal(err)
			}
		}
		return meter.Cycles()
	}
	inKernel := run(InKernel)
	userRing := run(UserRing)
	if userRing <= inKernel {
		t.Errorf("user-ring linker %d cycles <= in-kernel %d; paper reports it ran somewhat slower", userRing, inKernel)
	}
	if userRing > 2*inKernel {
		t.Errorf("user-ring linker %d vs %d: 'somewhat slower', not catastrophically", userRing, inKernel)
	}
}

func TestSnappedReferencesCostTheSameInBothModes(t *testing.T) {
	// Once snapped, the link is an indirect word; the extraction
	// penalty is per-snap, not per-reference.
	run := func(mode Mode) int64 {
		meter := &hw.CostMeter{}
		l := New(mode, meter, stubResolver(meter, nil))
		lk := NewLinkage()
		cpu := newCPU(meter)
		if _, err := l.Reference(cpu, lk, "hot_"); err != nil {
			t.Fatal(err)
		}
		meter.Reset()
		for i := 0; i < 1000; i++ {
			if _, err := l.Reference(cpu, lk, "hot_"); err != nil {
				t.Fatal(err)
			}
		}
		return meter.Cycles()
	}
	if a, b := run(InKernel), run(UserRing); a != b {
		t.Errorf("snapped reference cost differs: %d vs %d", a, b)
	}
}

func TestKernelLines(t *testing.T) {
	if KernelLines(InKernel) != 2000 {
		t.Errorf("InKernel lines = %d", KernelLines(InKernel))
	}
	if KernelLines(UserRing) != 0 {
		t.Errorf("UserRing lines = %d", KernelLines(UserRing))
	}
	if InKernel.String() == "" || UserRing.String() == "" {
		t.Error("mode names empty")
	}
}

func TestConcurrentSnaps(t *testing.T) {
	meter := &hw.CostMeter{}
	l := New(InKernel, meter, stubResolver(meter, nil))
	lk := NewLinkage()
	var wg sync.WaitGroup
	results := make([]Target, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tgt, err := l.Reference(nil, lk, "shared_")
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = tgt
		}(i)
	}
	wg.Wait()
	for i := 1; i < 8; i++ {
		if results[i] != results[0] {
			t.Fatalf("racy snap produced different targets: %v vs %v", results[i], results[0])
		}
	}
}
