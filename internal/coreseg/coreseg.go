// Package coreseg implements the core segment manager, the bottom
// module of the Kernel/Multics dependency lattice.
//
// Core segments are the key to breaking map, program and address-space
// dependency loops: they are allocated when the system is initialized
// (by initialization code and the processor hardware) and thereafter
// the only available operations on them are processor read and write.
// Any system module can keep its maps, programs and temporary storage
// in a core segment without fear of creating a dependency loop,
// tempered by the facts the paper lists: the number of core segments
// is fixed, a core segment cannot change size, and core segments are
// permanently resident in primary memory.
//
// The manager owns a prefix of the machine's page frames; the page
// frame manager multiplexes the rest.
package coreseg

import (
	"errors"
	"fmt"

	"multics/internal/hw"
	"multics/internal/lockrank"
)

// ModuleName is this manager's name in the kernel dependency graph:
// the bottom module of the lattice, so its lock ranks below every
// other manager's.
const ModuleName = "core-segment-manager"

// ErrSealed is returned by Allocate after initialization has
// completed: the set of core segments is fixed for the life of the
// system.
var ErrSealed = errors.New("coreseg: allocation sealed after system initialization")

// A Segment is one permanently resident, fixed-size core segment. Its
// only operations are Read and Write, plus PageTable, which exposes
// the wired page table a descriptor table needs to map the segment
// into an address space.
type Segment struct {
	name   string
	base   int // first frame
	frames int
	mem    *hw.Memory
	meter  *hw.CostMeter
	pt     *hw.PageTable
}

// Name returns the segment's name (for diagnostics and the dependency
// graph).
func (s *Segment) Name() string { return s.name }

// Words reports the segment's fixed size in words.
func (s *Segment) Words() int { return s.frames * hw.PageWords }

// Frames reports the segment's fixed size in page frames.
func (s *Segment) Frames() int { return s.frames }

// Read returns the word at offset off.
func (s *Segment) Read(off int) (hw.Word, error) {
	if off < 0 || off >= s.Words() {
		return 0, fmt.Errorf("coreseg: read offset %d outside %s of %d words", off, s.name, s.Words())
	}
	s.meter.Add(hw.CycMemRef)
	return s.mem.Read(s.mem.FrameBase(s.base) + off)
}

// Write stores w at offset off.
func (s *Segment) Write(off int, w hw.Word) error {
	if off < 0 || off >= s.Words() {
		return fmt.Errorf("coreseg: write offset %d outside %s of %d words", off, s.name, s.Words())
	}
	s.meter.Add(hw.CycMemRef)
	return s.mem.Write(s.mem.FrameBase(s.base)+off, w)
}

// PageTable returns the segment's wired page table: every descriptor
// is permanently present, so a descriptor table entry built on it can
// never take a missing-page fault.
func (s *Segment) PageTable() *hw.PageTable { return s.pt }

// A Manager allocates core segments from the low end of primary
// memory during system initialization and is then sealed.
type Manager struct {
	mem   *hw.Memory
	meter *hw.CostMeter

	mu     lockrank.Mutex
	next   int // next unallocated frame
	limit  int // frames reserved for core segments
	sealed bool
	segs   map[string]*Segment
	order  []string
}

// NewManager returns a manager that may allocate up to limitFrames
// page frames of mem for core segments.
func NewManager(mem *hw.Memory, limitFrames int, meter *hw.CostMeter) (*Manager, error) {
	if limitFrames <= 0 || limitFrames > mem.Frames() {
		return nil, fmt.Errorf("coreseg: limit of %d frames in a memory of %d", limitFrames, mem.Frames())
	}
	m := &Manager{mem: mem, meter: meter, limit: limitFrames, segs: make(map[string]*Segment)}
	m.mu.Init(ModuleName)
	return m, nil
}

// Allocate creates a core segment of at least words words (rounded up
// to whole frames). It fails after Seal, when memory is exhausted, or
// on a duplicate name.
func (m *Manager) Allocate(name string, words int) (*Segment, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sealed {
		return nil, ErrSealed
	}
	if words <= 0 {
		return nil, fmt.Errorf("coreseg: segment %s of %d words", name, words)
	}
	if _, ok := m.segs[name]; ok {
		return nil, fmt.Errorf("coreseg: segment %s already allocated", name)
	}
	frames := (words + hw.PageWords - 1) / hw.PageWords
	if m.next+frames > m.limit {
		return nil, fmt.Errorf("coreseg: out of wired memory: %s needs %d frames, %d remain", name, frames, m.limit-m.next)
	}
	pt := hw.NewPageTable(frames, true)
	for i := 0; i < frames; i++ {
		if err := pt.Set(i, hw.PTW{Present: true, Frame: m.next + i}); err != nil {
			return nil, err
		}
	}
	s := &Segment{name: name, base: m.next, frames: frames, mem: m.mem, meter: m.meter, pt: pt}
	m.next += frames
	m.segs[name] = s
	m.order = append(m.order, name)
	return s, nil
}

// Seal ends the allocation phase; it is called at the end of system
// initialization.
func (m *Manager) Seal() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sealed = true
}

// Sealed reports whether initialization has completed.
func (m *Manager) Sealed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sealed
}

// Segment returns the allocated segment with the given name.
func (m *Manager) Segment(name string) (*Segment, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.segs[name]
	if !ok {
		return nil, fmt.Errorf("coreseg: no segment %s", name)
	}
	return s, nil
}

// Segments returns the names of all core segments in allocation order.
func (m *Manager) Segments() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.order...)
}

// FirstPageableFrame reports the first frame the page frame manager
// may multiplex: everything below it is wired. It is the reserve
// limit regardless of how much of the reserve was used, so the split
// is fixed at configuration time.
func (m *Manager) FirstPageableFrame() int { return m.limit }

// WiredFramesUsed reports how many reserved frames have been
// allocated.
func (m *Manager) WiredFramesUsed() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.next
}
