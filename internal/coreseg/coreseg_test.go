package coreseg

import (
	"errors"
	"testing"

	"multics/internal/hw"
)

func newManager(t *testing.T, memFrames, limit int) *Manager {
	t.Helper()
	m, err := NewManager(hw.NewMemory(memFrames), limit, &hw.CostMeter{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAllocateReadWrite(t *testing.T) {
	m := newManager(t, 8, 4)
	s, err := m.Allocate("vp-states", 100)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "vp-states" {
		t.Errorf("Name = %q", s.Name())
	}
	if s.Words() != hw.PageWords {
		t.Errorf("Words = %d, want one frame rounded up", s.Words())
	}
	if err := s.Write(10, 42); err != nil {
		t.Fatal(err)
	}
	w, err := s.Read(10)
	if err != nil {
		t.Fatal(err)
	}
	if w != 42 {
		t.Errorf("read back %d", w)
	}
	if _, err := s.Read(s.Words()); err == nil {
		t.Error("read past end succeeded")
	}
	if err := s.Write(-1, 0); err == nil {
		t.Error("write before start succeeded")
	}
}

func TestSegmentsAreDisjoint(t *testing.T) {
	m := newManager(t, 8, 4)
	a, err := m.Allocate("a", hw.PageWords)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Allocate("b", hw.PageWords)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(0, 2); err != nil {
		t.Fatal(err)
	}
	wa, _ := a.Read(0)
	wb, _ := b.Read(0)
	if wa != 1 || wb != 2 {
		t.Errorf("segments overlap: a=%d b=%d", wa, wb)
	}
}

func TestSealStopsAllocation(t *testing.T) {
	m := newManager(t, 8, 4)
	if m.Sealed() {
		t.Error("sealed before Seal")
	}
	if _, err := m.Allocate("early", 10); err != nil {
		t.Fatal(err)
	}
	m.Seal()
	if !m.Sealed() {
		t.Error("not sealed after Seal")
	}
	if _, err := m.Allocate("late", 10); !errors.Is(err, ErrSealed) {
		t.Errorf("allocation after seal: %v, want ErrSealed", err)
	}
	// Existing segments remain readable and writable: the only
	// operations available after initialization.
	s, err := m.Segment("early")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(0, 7); err != nil {
		t.Errorf("write after seal: %v", err)
	}
}

func TestWiredLimit(t *testing.T) {
	m := newManager(t, 8, 2)
	if _, err := m.Allocate("a", 2*hw.PageWords); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Allocate("b", 1); err == nil {
		t.Error("allocation beyond wired limit succeeded")
	}
	if m.FirstPageableFrame() != 2 {
		t.Errorf("FirstPageableFrame = %d", m.FirstPageableFrame())
	}
	if m.WiredFramesUsed() != 2 {
		t.Errorf("WiredFramesUsed = %d", m.WiredFramesUsed())
	}
}

func TestDuplicateAndBadSizes(t *testing.T) {
	m := newManager(t, 8, 4)
	if _, err := m.Allocate("x", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Allocate("x", 1); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := m.Allocate("y", 0); err == nil {
		t.Error("zero-size segment accepted")
	}
	if _, err := m.Segment("nope"); err == nil {
		t.Error("lookup of unknown segment succeeded")
	}
	got := m.Segments()
	if len(got) != 1 || got[0] != "x" {
		t.Errorf("Segments = %v", got)
	}
}

func TestNewManagerValidation(t *testing.T) {
	mem := hw.NewMemory(4)
	if _, err := NewManager(mem, 0, nil); err == nil {
		t.Error("zero limit accepted")
	}
	if _, err := NewManager(mem, 5, nil); err == nil {
		t.Error("limit beyond memory accepted")
	}
}

func TestPageTableIsWired(t *testing.T) {
	m := newManager(t, 8, 4)
	s, err := m.Allocate("maps", 2*hw.PageWords)
	if err != nil {
		t.Fatal(err)
	}
	pt := s.PageTable()
	if !pt.Wired() {
		t.Error("core segment page table not wired")
	}
	if pt.Len() != 2 {
		t.Errorf("page table has %d entries", pt.Len())
	}
	for i := 0; i < pt.Len(); i++ {
		d, err := pt.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Present {
			t.Errorf("descriptor %d not present: core segments are permanently resident", i)
		}
	}
	// The page table really maps the segment: a processor reference
	// through it reaches the same words Segment.Write stored.
	if err := s.Write(hw.PageWords+3, 99); err != nil {
		t.Fatal(err)
	}
	dt := hw.NewDescriptorTable(4)
	if err := dt.Set(0, hw.SDW{Present: true, Table: pt, Access: hw.Read | hw.Write, MaxRing: 0, WriteRing: 0}); err != nil {
		t.Fatal(err)
	}
	p := hw.NewProcessor(0, memOf(t, m), nil)
	p.UserDT = dt
	w, err := p.Read(0, hw.PageWords+3)
	if err != nil {
		t.Fatal(err)
	}
	if w != 99 {
		t.Errorf("processor read %d through page table, want 99", w)
	}
}

// memOf digs the memory out for the processor-mapping test.
func memOf(t *testing.T, m *Manager) *hw.Memory {
	t.Helper()
	return m.mem
}
