package multics

// Ablation benchmarks for the design choices the paper weighs:
//
//   - the multi-process memory manager (Huber's daemons) on and off,
//     isolating the "small but unavoidable" IPC cost;
//   - memory pressure sweep: the paper predicts the redesign's cost
//     is "not significant unless the system were cramped for memory
//     and thrashing" — the gap should widen as memory shrinks;
//   - wired-memory fraction: core segments trade pageable frames for
//     loop-freedom;
//   - quota-directory density: how deep trees behave when quota
//     directories are sprinkled through them (the baseline's walk
//     shortens; the kernel stays flat).

import (
	"fmt"
	"testing"

	"multics/internal/hw"
)

func BenchmarkAblationDaemons(b *testing.B) {
	for _, daemons := range []bool{false, true} {
		name := "inline-writeback"
		if daemons {
			name = "page-writer-daemon"
		}
		b.Run(name, func(b *testing.B) {
			k := bootKernel(b, func(c *Config) {
				c.MemFrames = 24
				c.WiredFrames = 8
				c.Daemons = daemons
			})
			cpu, p, segno := kernelHotSegment(b, k, 32)
			b.ResetTimer()
			k.Meter.Reset()
			for i := 0; i < b.N; i++ {
				if err := k.Write(cpu, p, segno, (i%32)*hw.PageWords, hw.Word(i)); err != nil {
					b.Fatal(err)
				}
			}
			reportCycles(b, k.Meter)
		})
	}
}

func BenchmarkAblationMemoryPressure(b *testing.B) {
	// Fixed 32-page working set; pageable memory sweeps from
	// comfortable to cramped.
	const pages = 32
	for _, frames := range []int{48, 32, 16, 8} {
		b.Run(fmt.Sprintf("kernel/frames=%d", frames), func(b *testing.B) {
			k := bootKernel(b, func(c *Config) { c.MemFrames = frames + 8; c.WiredFrames = 8 })
			cpu, p, segno := kernelHotSegment(b, k, pages)
			b.ResetTimer()
			k.Meter.Reset()
			for i := 0; i < b.N; i++ {
				if _, err := k.Read(cpu, p, segno, (i%pages)*hw.PageWords); err != nil {
					b.Fatal(err)
				}
			}
			reportCycles(b, k.Meter)
		})
		b.Run(fmt.Sprintf("baseline/frames=%d", frames), func(b *testing.B) {
			s := bootBase(b, func(c *BaselineConfig) { c.MemFrames = frames + 8; c.WiredFrames = 8 })
			if err := s.Create("a.x", "hot", false); err != nil {
				b.Fatal(err)
			}
			p := s.CreateProcess("a.x")
			cpu := s.CPUs[0]
			s.Attach(cpu, p)
			segno, err := s.Open(p, "hot")
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < pages; i++ {
				if err := s.Write(cpu, p, segno, i*hw.PageWords, hw.Word(i+1)); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			s.Meter.Reset()
			for i := 0; i < b.N; i++ {
				if _, err := s.Read(cpu, p, segno, (i%pages)*hw.PageWords); err != nil {
					b.Fatal(err)
				}
			}
			reportCycles(b, s.Meter)
		})
	}
}

func BenchmarkAblationQuotaDirDensity(b *testing.B) {
	// Depth-12 tree; a quota directory every k levels. The
	// baseline's upward walk shortens as density rises; the kernel
	// is flat regardless.
	const depth = 12
	for _, every := range []int{12, 4, 1} {
		b.Run(fmt.Sprintf("baseline/quota-every=%d", every), func(b *testing.B) {
			s := bootBase(b, nil)
			path := ""
			for i := 0; i < depth; i++ {
				name := fmt.Sprintf("d%d", i)
				if path == "" {
					path = name
				} else {
					path += ">" + name
				}
				if err := s.Create("a.x", path, true); err != nil {
					b.Fatal(err)
				}
				// Quota directories at the top of each stride, so
				// the nearest superior sits every/2 levels above
				// the leaf on average: density controls walk
				// length.
				if i%every == 0 {
					if err := s.SetQuota("a.x", path, 1<<20); err != nil {
						b.Fatal(err)
					}
				}
			}
			if err := s.Create("a.x", path+">f", false); err != nil {
				b.Fatal(err)
			}
			p := s.CreateProcess("a.x")
			cpu := s.CPUs[0]
			s.Attach(cpu, p)
			segno, err := s.Open(p, path+">f")
			if err != nil {
				b.Fatal(err)
			}
			uid, err := s.UIDOf("a.x", path+">f")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			s.Meter.Reset()
			for i := 0; i < b.N; i++ {
				page := i % 60
				if i > 0 && page == 0 {
					b.StopTimer()
					if err := s.Truncate(uid, 0); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
				if err := s.Write(cpu, p, segno, page*hw.PageWords, 1); err != nil {
					b.Fatal(err)
				}
			}
			reportCycles(b, s.Meter)
		})
	}
	b.Run("kernel/any-density", func(b *testing.B) {
		k := bootKernel(b, nil)
		p, err := k.CreateProcess("a.x", Bottom)
		if err != nil {
			b.Fatal(err)
		}
		cpu := k.CPUs[0]
		k.Attach(cpu, p)
		var path []string
		for i := 0; i < depth; i++ {
			name := fmt.Sprintf("d%d", i)
			if _, err := k.CreateDir(cpu, p, path, name, Public(Read|Write), Bottom); err != nil {
				b.Fatal(err)
			}
			path = append(path, name)
		}
		if _, err := k.CreateFile(cpu, p, path, "f", nil, Bottom); err != nil {
			b.Fatal(err)
		}
		segno, err := k.OpenPath(cpu, p, append(append([]string{}, path...), "f"))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		k.Meter.Reset()
		for i := 0; i < b.N; i++ {
			page := i % 60
			if i > 0 && page == 0 {
				b.StopTimer()
				if err := k.Truncate(cpu, p, segno, 0); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			if err := k.Write(cpu, p, segno, page*hw.PageWords, 1); err != nil {
				b.Fatal(err)
			}
		}
		reportCycles(b, k.Meter)
	})
}

func BenchmarkAblationWiredFraction(b *testing.B) {
	// More wired memory means fewer pageable frames for the same
	// machine: the cost of the core-segment discipline under load.
	for _, wired := range []int{6, 12, 24} {
		b.Run(fmt.Sprintf("wired=%d-of-48", wired), func(b *testing.B) {
			k := bootKernel(b, func(c *Config) { c.MemFrames = 48; c.WiredFrames = wired })
			cpu, p, segno := kernelHotSegment(b, k, 40)
			b.ResetTimer()
			k.Meter.Reset()
			for i := 0; i < b.N; i++ {
				if _, err := k.Read(cpu, p, segno, (i%40)*hw.PageWords); err != nil {
					b.Fatal(err)
				}
			}
			reportCycles(b, k.Meter)
		})
	}
}
