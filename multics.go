// Package multics is a working reproduction of the system described
// in "The Multics Kernel Design Project" (Schroeder, Clark and
// Saltzer, 6th ACM Symposium on Operating Systems Principles, 1977):
// the re-engineering of the Multics supervisor into an auditable
// security kernel organized by type extension.
//
// The package re-exports the public surface of the simulation:
//
//   - Boot builds Kernel/Multics — the redesigned, loop-free kernel
//     of object managers, running on a simulated Honeywell-6180-style
//     machine with the paper's two hardware additions (a second,
//     wired descriptor base and the page-descriptor lock bit);
//
//   - BootBaseline builds the 1974-structure supervisor, with its
//     global page lock, interpretive retranslation, dynamic upward
//     quota searches, and hierarchy-constrained active segment table;
//
//   - the dependency graphs of both (Figures 2, 3 and 4 of the
//     paper), machine-checked: the kernel refuses to boot if its
//     structure has a loop or an undisciplined dependency;
//
//   - the peripheral experiments: the dynamic linker in and out of
//     the kernel, the monolithic and split answering service, the
//     per-network and generic network multiplexers, the two-phase
//     system initialization, and the census that regenerates the
//     paper's kernel-size table.
//
// Everything is deterministic: performance claims are checked against
// a simulated cycle meter, not wall time.
package multics

import (
	"multics/internal/aim"
	"multics/internal/baseline"
	"multics/internal/census"
	"multics/internal/core"
	"multics/internal/deps"
	"multics/internal/directory"
	"multics/internal/hw"
)

// Kernel is a booted Kernel/Multics instance.
type Kernel = core.Kernel

// Config parameterizes Boot.
type Config = core.Config

// PackSpec describes one disk pack.
type PackSpec = core.PackSpec

// Boot builds and structurally verifies a Kernel/Multics instance.
func Boot(cfg Config) (*Kernel, error) { return core.Boot(cfg) }

// DefaultConfig returns a small, fully functional machine.
func DefaultConfig() Config { return core.DefaultConfig() }

// NetNode is one kernel's attachment to the network plane: the
// generic demultiplexer, the front-end connection plane, and the
// internode connection table.
type NetNode = core.NetNode

// Link is a one-way inter-node segment channel between two attached
// nodes.
type Link = core.Link

// Connect wires the inter-node channel between two attached nodes and
// creates the serving process on the remote one.
func Connect(local, remote *NetNode) (*Link, error) { return core.Connect(local, remote) }

// Baseline is a booted 1974-structure supervisor.
type Baseline = baseline.Supervisor

// BaselineConfig parameterizes BootBaseline.
type BaselineConfig = baseline.Config

// BootBaseline builds the 1974-structure supervisor.
func BootBaseline(cfg BaselineConfig) (*Baseline, error) { return baseline.BootBaseline(cfg) }

// DefaultBaselineConfig mirrors DefaultConfig.
func DefaultBaselineConfig() BaselineConfig { return baseline.DefaultConfig() }

// KernelGraph returns the Figure-4 dependency structure of the
// redesigned kernel.
func KernelGraph() *deps.Graph { return core.BuildGraph() }

// SuperficialGraph returns Figure 2: the 1974 supervisor from afar.
func SuperficialGraph() *deps.Graph { return baseline.SuperficialGraph() }

// ActualGraph returns Figure 3: the 1974 supervisor up close.
func ActualGraph() *deps.Graph { return baseline.ActualGraph() }

// SizeTable regenerates the paper's kernel-size accounting.
func SizeTable() census.Table { return census.SizeTable() }

// Convenient re-exports for building workloads.
type (
	// Label is an AIM sensitivity label.
	Label = aim.Label
	// ACL is an access control list.
	ACL = directory.ACL
	// Identifier is an opaque directory-entry handle (possibly
	// mythical).
	Identifier = directory.Identifier
)

// Access modes and canonical labels.
const (
	Read    = hw.Read
	Write   = hw.Write
	Execute = hw.Execute
)

// Bottom is the lowest AIM label.
var Bottom = aim.Bottom

// Public returns an ACL granting mode to everyone.
func Public(mode hw.AccessMode) ACL { return directory.Public(mode) }

// Owner returns an ACL granting one principal full access.
func Owner(principal string) ACL { return directory.Owner(directory.Principal(principal)) }
