package multics

import (
	"fmt"
	"testing"

	"multics/internal/baseline"
	"multics/internal/hw"
	"multics/internal/uproc"
)

// These tests pin the shape of every performance comparison in the
// paper's evaluation against the deterministic cycle meter, so a cost-
// model regression fails loudly rather than silently changing the
// story. The benchmarks in bench_test.go report the same quantities.

// kernelFixture boots a kernel for shape tests.
func kernelFixture(t *testing.T, mutate func(*Config)) *Kernel {
	t.Helper()
	cfg := DefaultConfig()
	cfg.RootQuota = 100000
	cfg.Packs = []PackSpec{{ID: "dska", Records: 8192}, {ID: "dskb", Records: 8192}}
	if mutate != nil {
		mutate(&cfg)
	}
	k, err := Boot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func baselineFixture(t *testing.T, mutate func(*BaselineConfig)) *Baseline {
	t.Helper()
	cfg := DefaultBaselineConfig()
	cfg.RootQuota = 100000
	cfg.Packs = cfg.Packs[:0]
	cfg.Packs = append(cfg.Packs, struct {
		ID      string
		Records int
	}{"dska", 8192}, struct {
		ID      string
		Records int
	}{"dskb", 8192})
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := BootBaseline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// P5: the redesigned memory manager's processor path is slightly
// slower than the baseline's (PL/I recode plus daemon IPC) — the
// paper's "negative, but not significant". End to end the comparison
// now inverts: the kernel's faults ride the per-pack elevator queue,
// whose distance-priced positioning (short or no seeks between the
// sequential records of a thrashing scan, sorted write-back batches)
// undercuts the baseline's full average seek per transfer by more
// than the recode costs. The test pins both halves: the kernel wins
// overall, and the win stays modest — a runaway cost-model change in
// either direction still fails loudly.
func TestShapePageFaultPath(t *testing.T) {
	const pages, frames = 32, 16
	baselineCost := func() int64 {
		s := baselineFixture(t, func(c *BaselineConfig) { c.MemFrames = frames + 8; c.WiredFrames = 8 })
		if err := s.Create("a.x", "hot", false); err != nil {
			t.Fatal(err)
		}
		p := s.CreateProcess("a.x")
		cpu := s.CPUs[0]
		s.Attach(cpu, p)
		segno, err := s.Open(p, "hot")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < pages; i++ {
			if err := s.Write(cpu, p, segno, i*hw.PageWords, hw.Word(i+1)); err != nil {
				t.Fatal(err)
			}
		}
		start := s.Meter.Snapshot()
		for i := 0; i < 200; i++ {
			if _, err := s.Read(cpu, p, segno, (i%pages)*hw.PageWords); err != nil {
				t.Fatal(err)
			}
		}
		return s.Meter.Since(start)
	}()
	kernelCost := func() int64 {
		// The associative memory is off: this experiment reproduces
		// the paper's 1974-vs-kernel fault-path comparison, and the
		// baseline models no translation cache either.
		k := kernelFixture(t, func(c *Config) { c.MemFrames = frames + 8; c.WiredFrames = 8; c.AssocOff = true })
		k.Frames.FrameBatch = 1 // ungrouped write-back, as the 1976 system ran
		p, err := k.CreateProcess("a.x", Bottom)
		if err != nil {
			t.Fatal(err)
		}
		cpu := k.CPUs[0]
		k.Attach(cpu, p)
		if _, err := k.CreateFile(cpu, p, nil, "hot", nil, Bottom); err != nil {
			t.Fatal(err)
		}
		segno, err := k.OpenPath(cpu, p, []string{"hot"})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < pages; i++ {
			if err := k.Write(cpu, p, segno, i*hw.PageWords, hw.Word(i+1)); err != nil {
				t.Fatal(err)
			}
		}
		start := k.Meter.Snapshot()
		for i := 0; i < 200; i++ {
			if _, err := k.Read(cpu, p, segno, (i%pages)*hw.PageWords); err != nil {
				t.Fatal(err)
			}
		}
		return k.Meter.Since(start)
	}()
	if kernelCost >= baselineCost {
		t.Errorf("kernel fault path %d cycles >= baseline %d; the elevator's positioning savings should outweigh the recode", kernelCost, baselineCost)
	}
	speedup := 100 * float64(baselineCost-kernelCost) / float64(baselineCost)
	if speedup > 40 {
		t.Errorf("kernel fault path %.1f%% cheaper; the device scheduling win should stay modest (<40%%)", speedup)
	}
}

// P6: quota charging is O(1) against the statically bound cell and
// O(depth) for the baseline's dynamic upward search.
func TestShapeQuotaCost(t *testing.T) {
	kernelCostAt := func(depth int) int64 {
		k := kernelFixture(t, nil)
		p, err := k.CreateProcess("a.x", Bottom)
		if err != nil {
			t.Fatal(err)
		}
		cpu := k.CPUs[0]
		k.Attach(cpu, p)
		var path []string
		for i := 0; i < depth; i++ {
			name := fmt.Sprintf("d%d", i)
			if _, err := k.CreateDir(cpu, p, path, name, Public(Read|Write), Bottom); err != nil {
				t.Fatal(err)
			}
			path = append(path, name)
		}
		if _, err := k.CreateFile(cpu, p, path, "f", nil, Bottom); err != nil {
			t.Fatal(err)
		}
		segno, err := k.OpenPath(cpu, p, append(append([]string{}, path...), "f"))
		if err != nil {
			t.Fatal(err)
		}
		start := k.Meter.Snapshot()
		for i := 0; i < 50; i++ {
			if err := k.Write(cpu, p, segno, i*hw.PageWords, 1); err != nil {
				t.Fatal(err)
			}
		}
		return k.Meter.Since(start)
	}
	baselineCostAt := func(depth int) int64 {
		s := baselineFixture(t, nil)
		path := ""
		for i := 0; i < depth; i++ {
			name := fmt.Sprintf("d%d", i)
			if path == "" {
				path = name
			} else {
				path += ">" + name
			}
			if err := s.Create("a.x", path, true); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Create("a.x", path+">f", false); err != nil {
			t.Fatal(err)
		}
		p := s.CreateProcess("a.x")
		cpu := s.CPUs[0]
		s.Attach(cpu, p)
		segno, err := s.Open(p, path+">f")
		if err != nil {
			t.Fatal(err)
		}
		start := s.Meter.Snapshot()
		for i := 0; i < 50; i++ {
			if err := s.Write(cpu, p, segno, i*hw.PageWords, 1); err != nil {
				t.Fatal(err)
			}
		}
		return s.Meter.Since(start)
	}
	k1, k8 := kernelCostAt(1), kernelCostAt(8)
	b1, b8 := baselineCostAt(1), baselineCostAt(8)
	// Static cell: depth-independent (identical, not merely close).
	if k1 != k8 {
		t.Errorf("kernel growth cost varies with depth: %d at 1, %d at 8", k1, k8)
	}
	// Dynamic walk: grows with depth.
	if b8 <= b1 {
		t.Errorf("baseline growth cost did not grow with depth: %d at 1, %d at 8", b1, b8)
	}
	// Deep in the hierarchy, the redesign wins.
	if k8 >= b8 {
		t.Errorf("at depth 8, kernel %d >= baseline %d; the static binding should win", k8, b8)
	}
}

// P8: the two-level scheduler performs about the same as the
// one-level scheduler (the paper's expectation for the combined
// layers).
func TestShapeTwoLevelScheduler(t *testing.T) {
	oneLevel := func() int64 {
		s := baselineFixture(t, nil)
		for i := 0; i < 4; i++ {
			s.CreateProcess("u.x")
		}
		start := s.Meter.Snapshot()
		if _, err := s.RunQuantum(100, func(*baseline.Process) {}); err != nil {
			t.Fatal(err)
		}
		return s.Meter.Since(start)
	}()
	twoLevel := func() int64 {
		k := kernelFixture(t, nil)
		for i := 0; i < 4; i++ {
			if _, err := k.CreateProcess("u.x", Bottom); err != nil {
				t.Fatal(err)
			}
		}
		start := k.Meter.Snapshot()
		if _, err := k.Procs.RunQuantum(100, func(*uproc.Process) {}); err != nil {
			t.Fatal(err)
		}
		return k.Meter.Since(start)
	}()
	diff := twoLevel - oneLevel
	if diff < 0 {
		diff = -diff
	}
	if 100*diff > 10*oneLevel {
		t.Errorf("scheduler costs diverge more than 10%%: one-level %d, two-level %d", oneLevel, twoLevel)
	}
}

// The end-to-end sanity check the paper's plan aims at: the public
// facade boots both systems and the kernel's certification order is
// printable.
func TestFacade(t *testing.T) {
	k, err := Boot(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(k.CertificationOrder()) == 0 {
		t.Error("no certification order")
	}
	s, err := BootBaseline(DefaultBaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s == nil {
		t.Fatal("nil baseline")
	}
	if SizeTable().Final != 26000 {
		t.Error("size table drifted")
	}
	if !KernelGraph().LoopFree() {
		t.Error("kernel graph has loops")
	}
	if ActualGraph().LoopFree() {
		t.Error("1974 graph reported loop-free")
	}
	if len(Owner("a.b")) == 0 || len(Public(Read)) == 0 {
		t.Error("ACL helpers broken")
	}
}
