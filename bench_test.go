// Benchmarks regenerating every quantitative artifact of the paper's
// evaluation. Each benchmark reports simulated machine cycles per
// operation ("simcycles/op") alongside wall time; the paper's claims
// are about the simulated cycles, which are deterministic.
//
// Index (see DESIGN.md and EXPERIMENTS.md):
//
//	T1  BenchmarkSizeTable               — the kernel-size accounting
//	F2-4 BenchmarkDependencyGraphs       — structure build + verify
//	P1  BenchmarkLinker/*                — linker in kernel vs user ring
//	P2  BenchmarkPathResolve/*           — name manager in vs out
//	P3  BenchmarkLogin/*                 — monolithic vs split answering service
//	P4  BenchmarkMemoryManagerLang/*     — assembly vs PL/I memory manager
//	P5  BenchmarkPageFault/*             — baseline vs kernel fault path
//	P6  BenchmarkQuotaGrowth/*           — static cell vs dynamic walk (depth sweep)
//	P7  BenchmarkNetmux/*                — per-network vs generic kernel
//	P8  BenchmarkScheduler/*             — one-level vs two-level
//	C3  BenchmarkFullPackRelocation      — upward-signalled relocation
//	C4  BenchmarkConcurrentPageFaults    — descriptor-lock service, 2 CPUs
//	—   BenchmarkEventcount              — the synchronization substrate
package multics

import (
	"fmt"
	"sync"
	"testing"

	"multics/internal/aim"
	"multics/internal/answering"
	"multics/internal/baseline"
	"multics/internal/census"
	"multics/internal/directory"
	"multics/internal/eventcount"
	"multics/internal/hw"
	"multics/internal/linker"
	"multics/internal/netmux"
	"multics/internal/trace"
	"multics/internal/uproc"
)

// reportCycles attaches the simulated-cycle metric.
func reportCycles(b *testing.B, meter *hw.CostMeter) {
	b.ReportMetric(float64(meter.Cycles())/float64(b.N), "simcycles/op")
}

// reportAttribution attaches one metric per module that consumed
// cycles during the timed section, computed from the trace meters as
// the difference of two snapshots.
func reportAttribution(b *testing.B, after, before trace.Snapshot) {
	diff := after.Since(before)
	for name, st := range diff.Modules {
		if c := st.TotalCycles(); c > 0 {
			b.ReportMetric(float64(c)/float64(b.N), name+"-cyc/op")
		}
	}
}

// --- T1: the size table ---

func BenchmarkSizeTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := census.SizeTable()
		if t.TotalReduction != 28000 {
			b.Fatalf("table drifted: %d", t.TotalReduction)
		}
	}
}

// --- F2, F3, F4: the dependency structures ---

func BenchmarkDependencyGraphs(b *testing.B) {
	b.Run("fig2-superficial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := len(SuperficialGraph().Cycles()); got != 1 {
				b.Fatalf("cycles = %d", got)
			}
		}
	})
	b.Run("fig3-actual", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if SuperficialGraph().LoopFree() || ActualGraph().LoopFree() {
				b.Fatal("1974 structure reported loop-free")
			}
		}
	})
	b.Run("fig4-kernel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := KernelGraph().Verify(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- kernel/baseline fixtures ---

func bootKernel(b *testing.B, mutate func(*Config)) *Kernel {
	b.Helper()
	cfg := DefaultConfig()
	cfg.RootQuota = 100000
	cfg.Packs = []PackSpec{{ID: "dska", Records: 8192}, {ID: "dskb", Records: 8192}}
	if mutate != nil {
		mutate(&cfg)
	}
	k, err := Boot(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return k
}

func bootBase(b *testing.B, mutate func(*BaselineConfig)) *Baseline {
	b.Helper()
	cfg := DefaultBaselineConfig()
	cfg.RootQuota = 100000
	cfg.Packs = cfg.Packs[:0]
	cfg.Packs = append(cfg.Packs, struct {
		ID      string
		Records int
	}{"dska", 8192}, struct {
		ID      string
		Records int
	}{"dskb", 8192})
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := BootBaseline(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// --- P1: the dynamic linker ---

func BenchmarkLinker(b *testing.B) {
	for _, mode := range []linker.Mode{linker.InKernel, linker.UserRing} {
		b.Run(mode.String(), func(b *testing.B) {
			k := bootKernel(b, nil)
			p, err := k.CreateProcess("alice.sys", Bottom)
			if err != nil {
				b.Fatal(err)
			}
			cpu := k.CPUs[0]
			k.Attach(cpu, p)
			if _, err := k.CreateDir(cpu, p, nil, "lib", Public(Read|Write), Bottom); err != nil {
				b.Fatal(err)
			}
			// A pool of library entry points to snap.
			const pool = 64
			for i := 0; i < pool; i++ {
				if _, err := k.CreateFile(cpu, p, []string{"lib"}, fmt.Sprintf("sym%d_", i), Public(Read|Execute), Bottom); err != nil {
					b.Fatal(err)
				}
			}
			l := linker.New(mode, k.Meter, func(symbol string) (linker.Target, error) {
				segno, err := k.OpenPath(cpu, p, []string{"lib", symbol})
				if err != nil {
					return linker.Target{}, err
				}
				return linker.Target{Segno: segno, Offset: 0}, nil
			})
			b.ResetTimer()
			k.Meter.Reset()
			for i := 0; i < b.N; i++ {
				// Fresh linkage section each round: every
				// reference is a snap, as in program start-up.
				lk := linker.NewLinkage()
				if _, err := l.Reference(cpu, lk, fmt.Sprintf("sym%d_", i%pool)); err != nil {
					b.Fatal(err)
				}
			}
			reportCycles(b, k.Meter)
		})
	}
}

// --- P2: the name manager ---

func BenchmarkPathResolve(b *testing.B) {
	for _, depth := range []int{2, 4, 8} {
		k := bootKernel(b, nil)
		p, err := k.CreateProcess("alice.sys", Bottom)
		if err != nil {
			b.Fatal(err)
		}
		cpu := k.CPUs[0]
		k.Attach(cpu, p)
		var path []string
		for i := 0; i < depth-1; i++ {
			name := fmt.Sprintf("d%d", i)
			if _, err := k.CreateDir(cpu, p, path, name, Public(Read|Write), Bottom); err != nil {
				b.Fatal(err)
			}
			path = append(path, name)
		}
		if _, err := k.CreateFile(cpu, p, path, "leaf", Public(Read), Bottom); err != nil {
			b.Fatal(err)
		}
		full := append(append([]string{}, path...), "leaf")
		b.Run(fmt.Sprintf("user-ring-walk/depth=%d", depth), func(b *testing.B) {
			k.Meter.Reset()
			for i := 0; i < b.N; i++ {
				if _, err := k.WalkPath(cpu, p, full); err != nil {
					b.Fatal(err)
				}
			}
			reportCycles(b, k.Meter)
		})
		b.Run(fmt.Sprintf("in-kernel/depth=%d", depth), func(b *testing.B) {
			k.Meter.Reset()
			for i := 0; i < b.N; i++ {
				if _, err := k.ResolveKernel(cpu, p, full); err != nil {
					b.Fatal(err)
				}
			}
			reportCycles(b, k.Meter)
		})
	}
}

// --- P3: the answering service ---

func BenchmarkLogin(b *testing.B) {
	for _, mode := range []answering.Mode{answering.Monolithic, answering.Split} {
		b.Run(mode.String(), func(b *testing.B) {
			meter := &hw.CostMeter{}
			created := 0
			svc := answering.New(mode, meter, func(principal string, label aim.Label) (any, error) {
				created++
				return created, nil
			})
			if err := svc.Register("alice.sys", "hunter2", aim.Top); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			meter.Reset()
			for i := 0; i < b.N; i++ {
				sess, err := svc.Login("alice.sys", "hunter2", Bottom)
				if err != nil {
					b.Fatal(err)
				}
				if err := svc.Logout(sess, 1); err != nil {
					b.Fatal(err)
				}
			}
			reportCycles(b, meter)
		})
	}
}

// --- P4: assembly vs PL/I memory manager ---

func BenchmarkMemoryManagerLang(b *testing.B) {
	for _, lang := range []struct {
		name string
		l    hw.Language
	}{{"asm", hw.ASM}, {"pli", hw.PLI}} {
		b.Run(lang.name, func(b *testing.B) {
			k := bootKernel(b, func(c *Config) { c.MemFrames = 24; c.WiredFrames = 8 })
			k.Frames.Lang = lang.l
			cpu, p, segno := kernelHotSegment(b, k, 32)
			b.ResetTimer()
			k.Meter.Reset()
			for i := 0; i < b.N; i++ {
				if _, err := k.Read(cpu, p, segno, (i%32)*hw.PageWords); err != nil {
					b.Fatal(err)
				}
			}
			reportCycles(b, k.Meter)
		})
	}
}

// kernelHotSegment prepares a dirty multi-page segment for fault
// storms.
func kernelHotSegment(b *testing.B, k *Kernel, pages int) (*hw.Processor, *uproc.Process, int) {
	b.Helper()
	p, err := k.CreateProcess("alice.sys", Bottom)
	if err != nil {
		b.Fatal(err)
	}
	cpu := k.CPUs[0]
	k.Attach(cpu, p)
	if _, err := k.CreateFile(cpu, p, nil, "hot", nil, Bottom); err != nil {
		b.Fatal(err)
	}
	segno, err := k.OpenPath(cpu, p, []string{"hot"})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < pages; i++ {
		if err := k.Write(cpu, p, segno, i*hw.PageWords, hw.Word(i+1)); err != nil {
			b.Fatal(err)
		}
	}
	return cpu, p, segno
}

// --- P5: the page-fault path, baseline vs kernel ---

func BenchmarkPageFault(b *testing.B) {
	// Working set of 32 pages against 16 pageable frames: every
	// round-robin touch faults and evicts.
	const pages, frames = 32, 16
	b.Run("baseline-1974", func(b *testing.B) {
		s := bootBase(b, func(c *BaselineConfig) { c.MemFrames = frames + 8; c.WiredFrames = 8 })
		if err := s.Create("a.x", "hot", false); err != nil {
			b.Fatal(err)
		}
		p := s.CreateProcess("a.x")
		cpu := s.CPUs[0]
		s.Attach(cpu, p)
		segno, err := s.Open(p, "hot")
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < pages; i++ {
			if err := s.Write(cpu, p, segno, i*hw.PageWords, hw.Word(i+1)); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		s.Meter.Reset()
		for i := 0; i < b.N; i++ {
			if _, err := s.Read(cpu, p, segno, (i%pages)*hw.PageWords); err != nil {
				b.Fatal(err)
			}
		}
		reportCycles(b, s.Meter)
	})
	b.Run("kernel-design", func(b *testing.B) {
		k := bootKernel(b, func(c *Config) {
			c.MemFrames = frames + 8
			c.WiredFrames = 8
			c.TraceEvents = 1 << 12
		})
		cpu, p, segno := kernelHotSegment(b, k, pages)
		b.ResetTimer()
		k.Meter.Reset()
		before := k.Trace.Snapshot()
		for i := 0; i < b.N; i++ {
			if _, err := k.Read(cpu, p, segno, (i%pages)*hw.PageWords); err != nil {
				b.Fatal(err)
			}
		}
		reportCycles(b, k.Meter)
		reportAttribution(b, k.Trace.Snapshot(), before)
	})
}

// --- P6: quota, static cell vs dynamic upward walk ---

func BenchmarkQuotaGrowth(b *testing.B) {
	for _, depth := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("kernel-static-cell/depth=%d", depth), func(b *testing.B) {
			k := bootKernel(b, nil)
			p, err := k.CreateProcess("a.x", Bottom)
			if err != nil {
				b.Fatal(err)
			}
			cpu := k.CPUs[0]
			k.Attach(cpu, p)
			var path []string
			for i := 0; i < depth; i++ {
				name := fmt.Sprintf("d%d", i)
				if _, err := k.CreateDir(cpu, p, path, name, Public(Read|Write), Bottom); err != nil {
					b.Fatal(err)
				}
				path = append(path, name)
			}
			if _, err := k.CreateFile(cpu, p, path, "f", nil, Bottom); err != nil {
				b.Fatal(err)
			}
			segno, err := k.OpenPath(cpu, p, append(append([]string{}, path...), "f"))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			k.Meter.Reset()
			for i := 0; i < b.N; i++ {
				// Each iteration grows a fresh page (the charged
				// path), truncating the segment empty when the
				// architectural cycle wraps.
				page := i % 60
				if i > 0 && page == 0 {
					b.StopTimer()
					if err := k.Truncate(cpu, p, segno, 0); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
				if err := k.Write(cpu, p, segno, page*hw.PageWords, 1); err != nil {
					b.Fatal(err)
				}
			}
			reportCycles(b, k.Meter)
		})
		b.Run(fmt.Sprintf("baseline-dynamic-walk/depth=%d", depth), func(b *testing.B) {
			s := bootBase(b, nil)
			path := ""
			for i := 0; i < depth; i++ {
				name := fmt.Sprintf("d%d", i)
				if path == "" {
					path = name
				} else {
					path += ">" + name
				}
				if err := s.Create("a.x", path, true); err != nil {
					b.Fatal(err)
				}
			}
			if err := s.Create("a.x", path+">f", false); err != nil {
				b.Fatal(err)
			}
			p := s.CreateProcess("a.x")
			cpu := s.CPUs[0]
			s.Attach(cpu, p)
			segno, err := s.Open(p, path+">f")
			if err != nil {
				b.Fatal(err)
			}
			uid, err := s.UIDOf("a.x", path+">f")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			s.Meter.Reset()
			for i := 0; i < b.N; i++ {
				page := i % 60
				if i > 0 && page == 0 {
					b.StopTimer()
					if err := s.Truncate(uid, 0); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
				if err := s.Write(cpu, p, segno, page*hw.PageWords, 1); err != nil {
					b.Fatal(err)
				}
			}
			reportCycles(b, s.Meter)
		})
	}
}

// --- P7: network multiplexing ---

func BenchmarkNetmux(b *testing.B) {
	for _, mode := range []netmux.Mode{netmux.PerNetworkKernel, netmux.GenericKernel} {
		b.Run(mode.String(), func(b *testing.B) {
			meter := &hw.CostMeter{}
			m := netmux.New(mode, meter)
			if err := m.Attach(netmux.Arpanet{Links: 4}); err != nil {
				b.Fatal(err)
			}
			cpu := hw.NewProcessor(0, hw.NewMemory(1), meter)
			cpu.Ring = hw.UserRing
			frame := netmux.Frame{Channel: 1, Payload: []hw.Word{0, 2, 4, 6}}
			b.ResetTimer()
			meter.Reset()
			for i := 0; i < b.N; i++ {
				if err := m.Deliver(cpu, "arpanet", frame); err != nil {
					b.Fatal(err)
				}
				if _, ok := m.Receive("arpanet", 1); !ok {
					b.Fatal("no delivery")
				}
			}
			reportCycles(b, meter)
		})
	}
}

// --- P8: one-level vs two-level scheduler ---

func BenchmarkScheduler(b *testing.B) {
	const nprocs = 4
	b.Run("one-level-1974", func(b *testing.B) {
		s := bootBase(b, nil)
		for i := 0; i < nprocs; i++ {
			s.CreateProcess("u.x")
		}
		b.ResetTimer()
		s.Meter.Reset()
		for i := 0; i < b.N; i++ {
			if _, err := s.RunQuantum(1, func(*baseline.Process) {}); err != nil {
				b.Fatal(err)
			}
		}
		reportCycles(b, s.Meter)
	})
	b.Run("two-level-kernel", func(b *testing.B) {
		k := bootKernel(b, func(c *Config) { c.TraceEvents = 1 << 12 })
		for i := 0; i < nprocs; i++ {
			if _, err := k.CreateProcess("u.x", Bottom); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		k.Meter.Reset()
		before := k.Trace.Snapshot()
		for i := 0; i < b.N; i++ {
			if _, err := k.Procs.RunQuantum(1, func(*uproc.Process) {}); err != nil {
				b.Fatal(err)
			}
		}
		reportCycles(b, k.Meter)
		reportAttribution(b, k.Trace.Snapshot(), before)
	})
}

// --- C3: full-pack relocation via upward signal ---

func BenchmarkFullPackRelocation(b *testing.B) {
	k := bootKernel(b, func(c *Config) {
		c.Packs = []PackSpec{{ID: "p0", Records: 24}, {ID: "p1", Records: 1 << 20}}
		c.MemFrames = 64
		c.WiredFrames = 8
	})
	p, err := k.CreateProcess("a.x", Bottom)
	if err != nil {
		b.Fatal(err)
	}
	cpu := k.CPUs[0]
	k.Attach(cpu, p)
	b.ResetTimer()
	k.Meter.Reset()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// A fresh file on the small pack, grown until it overflows;
		// deleted afterwards so the fixture is reusable for any b.N.
		if _, err := k.CreateFile(cpu, p, nil, "victim", nil, Bottom); err != nil {
			b.Fatal(err)
		}
		segno, err := k.OpenPath(cpu, p, []string{"victim"})
		if err != nil {
			b.Fatal(err)
		}
		restores := k.Restores()
		b.StartTimer()
		for pg := 0; k.Restores() == restores; pg++ {
			if err := k.Write(cpu, p, segno, pg*hw.PageWords, hw.Word(pg+1)); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if err := k.Dirs.Delete("a.x", Bottom, k.Dirs.RootID(), "victim"); err != nil {
			b.Fatal(err)
		}
		if err := k.KSM.Terminate(p.KST(), segno); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	reportCycles(b, k.Meter)
}

// --- C4: concurrent fault service on two CPUs ---

func BenchmarkConcurrentPageFaults(b *testing.B) {
	k := bootKernel(b, func(c *Config) { c.MemFrames = 24; c.WiredFrames = 8 })
	cpu0, p, segno := kernelHotSegment(b, k, 32)
	cpu1 := k.CPUs[1]
	k.Attach(cpu1, p)
	b.ResetTimer()
	k.Meter.Reset()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		off := (i % 32) * hw.PageWords
		for _, cpu := range []*hw.Processor{cpu0, cpu1} {
			wg.Add(1)
			go func(cpu *hw.Processor) {
				defer wg.Done()
				if _, err := k.Read(cpu, p, segno, off); err != nil {
					b.Error(err)
				}
			}(cpu)
		}
		wg.Wait()
	}
	reportCycles(b, k.Meter)
}

// --- the synchronization substrate ---

func BenchmarkEventcount(b *testing.B) {
	b.Run("advance", func(b *testing.B) {
		var ec eventcount.Eventcount
		for i := 0; i < b.N; i++ {
			ec.Advance()
		}
	})
	b.Run("read", func(b *testing.B) {
		var ec eventcount.Eventcount
		ec.Advance()
		for i := 0; i < b.N; i++ {
			_ = ec.Read()
		}
	})
	b.Run("ticket-mutex", func(b *testing.B) {
		var m eventcount.Mutex
		for i := 0; i < b.N; i++ {
			m.Lock()
			m.Unlock()
		}
	})
	b.Run("await-satisfied", func(b *testing.B) {
		var ec eventcount.Eventcount
		ec.Advance()
		for i := 0; i < b.N; i++ {
			ec.Await(1)
		}
	})
}

// --- directory probe (Bratt primitive) ---

func BenchmarkSearchPrimitive(b *testing.B) {
	k := bootKernel(b, nil)
	p, err := k.CreateProcess("alice.sys", Bottom)
	if err != nil {
		b.Fatal(err)
	}
	cpu := k.CPUs[0]
	k.Attach(cpu, p)
	if _, err := k.CreateDir(cpu, p, nil, "d", Public(Read|Write), Bottom); err != nil {
		b.Fatal(err)
	}
	if _, err := k.CreateFile(cpu, p, []string{"d"}, "f", Public(Read), Bottom); err != nil {
		b.Fatal(err)
	}
	dirID, err := k.WalkPath(cpu, p, []string{"d"})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("real", func(b *testing.B) {
		k.Meter.Reset()
		for i := 0; i < b.N; i++ {
			if _, err := k.Search(cpu, p, dirID, "f"); err != nil {
				b.Fatal(err)
			}
		}
		reportCycles(b, k.Meter)
	})
	b.Run("mythical", func(b *testing.B) {
		k.Meter.Reset()
		for i := 0; i < b.N; i++ {
			if _, err := k.Search(cpu, p, directory.Identifier(0xdead), "f"); err != nil {
				b.Fatal(err)
			}
		}
		reportCycles(b, k.Meter)
	})
}
